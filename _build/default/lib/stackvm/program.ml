type func = { name : string; nargs : int; nlocals : int; code : Instr.t array }

type t = { funcs : func array; nglobals : int; main : string }

let func ~name ~nargs ~nlocals code =
  if nargs < 0 || nlocals < nargs then invalid_arg "Program.func: nlocals must cover nargs";
  { name; nargs; nlocals; code = Array.of_list code }

let make ?(nglobals = 0) ?(main = "main") funcs =
  let names = List.map (fun f -> f.name) funcs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Program.make: duplicate function names";
  { funcs = Array.of_list funcs; nglobals; main }

let find_func t name = Array.find_opt (fun f -> f.name = name) t.funcs

let func_index t name =
  let rec go i = if i >= Array.length t.funcs then None else if t.funcs.(i).name = name then Some i else go (i + 1) in
  go 0

let instruction_count t = Array.fold_left (fun acc f -> acc + Array.length f.code) 0 t.funcs

let block_starts f =
  let n = Array.length f.code in
  let starts = Array.make n false in
  if n > 0 then starts.(0) <- true;
  Array.iteri
    (fun pc instr ->
      List.iter (fun t -> if t >= 0 && t < n then starts.(t) <- true) (Instr.targets instr);
      match instr with
      | Instr.Jump _ | Instr.If _ | Instr.Ret -> if pc + 1 < n then starts.(pc + 1) <- true
      | _ -> ())
    f.code;
  starts

let block_of_pc starts pc =
  let rec go p = if p <= 0 || starts.(p) then p else go (p - 1) in
  go pc

let replace_func t f =
  match func_index t f.name with
  | None -> raise Not_found
  | Some i ->
      let funcs = Array.copy t.funcs in
      funcs.(i) <- f;
      { t with funcs }

let add_func t f =
  if find_func t f.name <> None then invalid_arg "Program.add_func: duplicate name";
  { t with funcs = Array.append t.funcs [| f |] }

let with_globals t n = { t with nglobals = max t.nglobals n }

let pp fmt t =
  Format.fprintf fmt "program (globals=%d, main=%s)@." t.nglobals t.main;
  Array.iter
    (fun f ->
      Format.fprintf fmt "func %s(args=%d, locals=%d):@." f.name f.nargs f.nlocals;
      Array.iteri (fun pc instr -> Format.fprintf fmt "  %4d: %a@." pc Instr.pp instr) f.code)
    t.funcs
