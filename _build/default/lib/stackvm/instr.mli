(** The bytecode instruction set of the stack virtual machine.

    This VM plays the role Java bytecode plays in Section 3 of the paper: a
    verifiable stack machine with structured functions, locals, globals and
    conditional branches whose dynamic behaviour the watermark lives in.
    Values are native integers; arrays live on a heap and are referred to by
    integer handles. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated; division by zero is a runtime error *)
  | Rem
  | And
  | Or
  | Xor
  | Shl  (** shift counts are masked to 0..62 *)
  | Shr  (** arithmetic shift *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of int  (** push a constant *)
  | Load of int  (** push local slot (arguments occupy the first slots) *)
  | Store of int  (** pop into local slot *)
  | Get_global of int  (** push global cell *)
  | Set_global of int  (** pop into global cell *)
  | Binop of binop  (** pop b, pop a, push [a op b] *)
  | Neg
  | Not  (** logical negation: push 1 if zero, else 0 *)
  | Cmp of cmp  (** pop b, pop a, push [a cmp b] as 0/1 *)
  | Dup
  | Pop
  | Swap
  | New_array  (** pop length, push fresh zero-filled array handle *)
  | Array_load  (** pop index, pop handle, push element *)
  | Array_store  (** pop value, pop index, pop handle *)
  | Array_len  (** pop handle, push length *)
  | Jump of int  (** unconditional, target is an instruction index *)
  | If of { sense : bool; target : int }
      (** pop v; branch to [target] iff [(v <> 0) = sense]. The only
          conditional branch of the ISA — the instruction whose dynamic
          behaviour carries the watermark. *)
  | Call of string  (** pop callee's arguments (last on top), push result *)
  | Ret  (** pop result, return to caller *)
  | Print  (** pop, append to the output stream *)
  | Read  (** push the next value of the input sequence *)
  | Nop

val stack_delta : t -> int option
(** Net change in operand-stack depth, or [None] for [Call] (depends on the
    callee's arity) and [Ret]. *)

val is_branch : t -> bool
(** True for [If _] — the instructions that contribute trace bits. *)

val targets : t -> int list
(** Static successors other than fall-through ([Jump]/[If] targets). *)

val falls_through : t -> bool
(** Whether control can continue to the next instruction ([Jump] and [Ret]
    cannot). *)

val relocate : t -> f:(int -> int) -> t
(** Rewrite branch targets with [f]; other instructions unchanged. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
