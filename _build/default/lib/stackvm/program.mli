(** Programs of the stack VM: functions, entry point, global state. *)

type func = {
  name : string;
  nargs : int;  (** arguments occupy local slots [0 .. nargs-1] *)
  nlocals : int;  (** total local slots, including the arguments *)
  code : Instr.t array;
}

type t = {
  funcs : func array;
  nglobals : int;
  main : string;  (** entry function; must take 0 arguments *)
}

val func : name:string -> nargs:int -> nlocals:int -> Instr.t list -> func
(** Build a function; raises [Invalid_argument] if [nlocals < nargs]. *)

val make : ?nglobals:int -> ?main:string -> func list -> t
(** Build a program ([main] defaults to ["main"]). Function names must be
    distinct. *)

val find_func : t -> string -> func option
val func_index : t -> string -> int option
val instruction_count : t -> int

val block_starts : func -> bool array
(** [block_starts f] marks the leaders of basic blocks: instruction 0,
    every branch/jump target, and every instruction following a [Jump],
    [If] or [Ret]. *)

val block_of_pc : bool array -> int -> int
(** [block_of_pc starts pc] is the leader of the block containing [pc]. *)

val replace_func : t -> func -> t
(** Replace the function of the same name. Raises [Not_found] if absent. *)

val add_func : t -> func -> t
(** Append a new function; raises [Invalid_argument] on duplicate name. *)

val with_globals : t -> int -> t
(** Grow the global-cell count to at least the given value. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing. *)
