(** A tiny assembler: instruction lists with symbolic labels.

    Raw {!Instr.t} uses absolute instruction indices for branch targets,
    which is unusable for hand-written code; this front-end resolves
    symbolic labels in one pass. *)

type item =
  | I of Instr.t  (** a plain instruction (targets ignored — use [Jmp]/[Br]) *)
  | L of string  (** define a label at the next instruction *)
  | Jmp of string  (** [Jump] to a label *)
  | Br of bool * string  (** [If {sense; target}] to a label *)

val assemble : item list -> Instr.t list
(** Raises [Invalid_argument] on undefined or duplicate labels. *)

val func : name:string -> nargs:int -> nlocals:int -> item list -> Program.func
(** Assemble straight into a function. *)
