open Nativesim

let noop_insertion ~rate rng bin =
  Rewriter.transform bin ~f:(fun _ insn ->
      if Util.Prng.float rng 1.0 < rate then [ Insn.Nop; insn ] else [ insn ])

let branch_sense_inversion ~fraction rng bin =
  let invert (cc : Insn.cc) : Insn.cc =
    match cc with Eq -> Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt | Gt -> Le | Le -> Gt
  in
  Rewriter.transform bin ~f:(fun addr insn ->
      match insn with
      | Insn.Jcc (cc, target) when Util.Prng.float rng 1.0 < fraction ->
          (* the inverted branch jumps over the compensating jump to the old
             fall-through; both targets use old addresses, which transform
             relocates *)
          [ Insn.Jcc (invert cc, addr + Insn.size insn); Insn.Jmp target ]
      | _ -> [ insn ])

let double_watermark ?seed ~watermark ~bits ~training_input bin =
  let lifted = Rewriter.to_program bin in
  (Nwm.Embed.embed ?seed ~watermark ~bits ~training_input lifted).Nwm.Embed.binary

(* The attacker's reconnaissance: run the simple tracer to locate the
   branch function and the (call site -> observed destination) pairs. *)
let observed_calls bin ~begin_addr ~end_addr ~input =
  match Nwm.Extract.extract ~kind:Nwm.Extract.Simple bin ~begin_addr ~end_addr ~input with
  | Error _ -> None
  | Ok ex ->
      let sites = ex.Nwm.Extract.call_sites in
      let rec pair = function
        | a :: (b :: _ as rest) -> (a, b) :: pair rest
        | [ last ] -> [ (last, end_addr) ]
        | [] -> []
      in
      Some (ex.Nwm.Extract.f_entry, pair sites)

let bypass ?(fraction = 1.0) rng bin ~begin_addr ~end_addr ~input =
  match observed_calls bin ~begin_addr ~end_addr ~input with
  | None -> bin
  | Some (_, pairs) ->
      List.fold_left
        (fun bin (site, dest) ->
          if Util.Prng.float rng 1.0 <= fraction then
            (* call rel32 and jmp rel32 are both 5 bytes: overwrite in place *)
            Rewriter.patch_insn bin ~at:site (Insn.Jmp dest)
          else bin)
        bin pairs

let reroute _rng bin ~begin_addr ~end_addr ~input =
  match observed_calls bin ~begin_addr ~end_addr ~input with
  | None -> bin
  | Some (f_entry, pairs) ->
      let bin, trampoline = Rewriter.append_text bin [ Insn.Jmp f_entry ] in
      List.fold_left
        (fun bin (site, _) ->
          match Disasm.at bin site with
          | Insn.Call t when t = f_entry -> Rewriter.patch_insn bin ~at:site (Insn.Call trampoline)
          | _ -> bin)
        bin pairs

let broken ?fuel original attacked ~inputs =
  List.exists
    (fun input ->
      let r0 = Machine.run ?fuel original ~input in
      let r1 = Machine.run ?fuel attacked ~input in
      not (Machine.outputs_equal r0 r1))
    inputs
