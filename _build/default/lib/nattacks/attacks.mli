(** The five attacks of §5.2.2 against branch-function watermarks.

    The first three are code transformations a standard binary tool could
    perform; because branch-function tables pin absolute addresses that no
    rewriter can see, all three are expected to {e break} the program —
    that is the tamper-proofing claim the experiments verify.  The last
    two are targeted attacks on the branch function itself: bypassing
    breaks the program through missed tamper-proofing updates; rerouting
    keeps it running and is the one attack whose effect differs between
    the simple and the smart tracer. *)

val noop_insertion : rate:float -> Util.Prng.t -> Nativesim.Binary.t -> Nativesim.Binary.t
(** Insert [rate * |insns|] no-ops at random points, relocating every
    direct branch (the rewriter's best effort). *)

val branch_sense_inversion : fraction:float -> Util.Prng.t -> Nativesim.Binary.t -> Nativesim.Binary.t
(** Invert conditional branches, swapping taken/fall-through with a
    compensating jump. *)

val double_watermark :
  ?seed:int64 ->
  watermark:Bignum.t ->
  bits:int ->
  training_input:int list ->
  Nativesim.Binary.t ->
  Nativesim.Binary.t
(** Run the watermarker again on the (lifted) watermarked binary. *)

val bypass :
  ?fraction:float ->
  Util.Prng.t ->
  Nativesim.Binary.t ->
  begin_addr:int ->
  end_addr:int ->
  input:int list ->
  Nativesim.Binary.t
(** Overwrite observed branch-function calls with same-size direct jumps
    to the destination each call was seen to reach — the subtractive
    attack.  The attacker first runs the simple tracer to find the calls. *)

val reroute :
  Util.Prng.t ->
  Nativesim.Binary.t ->
  begin_addr:int ->
  end_addr:int ->
  input:int list ->
  Nativesim.Binary.t
(** Replace each [call f] with [call Y] where [Y: jmp f] is appended at
    the end of the text — no address in the original image changes, so the
    program keeps working, but a tracer keyed on the instruction entering
    the branch function now sees [Y]. *)

val broken :
  ?fuel:int -> Nativesim.Binary.t -> Nativesim.Binary.t -> inputs:int list list -> bool
(** [broken original attacked ~inputs] — the attacked binary traps,
    diverges, or produces different output on some input. *)
