lib/nattacks/attacks.mli: Bignum Nativesim Util
