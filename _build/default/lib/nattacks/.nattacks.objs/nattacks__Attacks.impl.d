lib/nattacks/attacks.ml: Disasm Insn List Machine Nativesim Nwm Rewriter Util
