open Stackvm

module Env = Map.Make (String)

type binding = Slot of int | Global of int

type ctx = {
  globals : binding Env.t;
  mutable next_slot : int;
  mutable max_slot : int;
  mutable next_label : int;
  mutable items : Asm.item list;  (** reversed *)
}

let emit ctx item = ctx.items <- item :: ctx.items

let fresh_label ctx prefix =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let alloc_slot ctx =
  let s = ctx.next_slot in
  ctx.next_slot <- s + 1;
  ctx.max_slot <- max ctx.max_slot ctx.next_slot;
  s

let lookup env ctx name =
  match Env.find_opt name env with
  | Some b -> b
  | None -> begin
      match Env.find_opt name ctx.globals with
      | Some b -> b
      | None -> invalid_arg ("To_stackvm: unbound " ^ name)
    end

let rec gen_expr ctx env (e : Ast.expr) =
  match e with
  | Ast.Num v -> emit ctx (Asm.I (Instr.Const v))
  | Ast.Var name -> begin
      match lookup env ctx name with
      | Slot s -> emit ctx (Asm.I (Instr.Load s))
      | Global g -> emit ctx (Asm.I (Instr.Get_global g))
    end
  | Ast.Index (a, i) ->
      gen_expr ctx env a;
      gen_expr ctx env i;
      emit ctx (Asm.I Instr.Array_load)
  | Ast.Unary (Ast.Neg, e) ->
      gen_expr ctx env e;
      emit ctx (Asm.I Instr.Neg)
  | Ast.Unary (Ast.Not, e) ->
      gen_expr ctx env e;
      emit ctx (Asm.I Instr.Not)
  | Ast.Unary (Ast.BNot, e) ->
      gen_expr ctx env e;
      emit ctx (Asm.I (Instr.Const (-1)));
      emit ctx (Asm.I (Instr.Binop Instr.Xor))
  | Ast.Bin (Ast.Land, a, b) ->
      let rhs = fresh_label ctx "and_rhs" and fin = fresh_label ctx "and_end" in
      gen_expr ctx env a;
      emit ctx (Asm.Br (true, rhs));
      emit ctx (Asm.I (Instr.Const 0));
      emit ctx (Asm.Jmp fin);
      emit ctx (Asm.L rhs);
      gen_expr ctx env b;
      emit ctx (Asm.I (Instr.Const 0));
      emit ctx (Asm.I (Instr.Cmp Instr.Ne));
      emit ctx (Asm.L fin)
  | Ast.Bin (Ast.Lor, a, b) ->
      let rhs = fresh_label ctx "or_rhs" and fin = fresh_label ctx "or_end" in
      gen_expr ctx env a;
      emit ctx (Asm.Br (false, rhs));
      emit ctx (Asm.I (Instr.Const 1));
      emit ctx (Asm.Jmp fin);
      emit ctx (Asm.L rhs);
      gen_expr ctx env b;
      emit ctx (Asm.I (Instr.Const 0));
      emit ctx (Asm.I (Instr.Cmp Instr.Ne));
      emit ctx (Asm.L fin)
  | Ast.Bin (op, a, b) -> begin
      gen_expr ctx env a;
      gen_expr ctx env b;
      let simple i = emit ctx (Asm.I i) in
      match op with
      | Ast.Add -> simple (Instr.Binop Instr.Add)
      | Ast.Sub -> simple (Instr.Binop Instr.Sub)
      | Ast.Mul -> simple (Instr.Binop Instr.Mul)
      | Ast.Div -> simple (Instr.Binop Instr.Div)
      | Ast.Rem -> simple (Instr.Binop Instr.Rem)
      | Ast.Band -> simple (Instr.Binop Instr.And)
      | Ast.Bor -> simple (Instr.Binop Instr.Or)
      | Ast.Bxor -> simple (Instr.Binop Instr.Xor)
      | Ast.Shl -> simple (Instr.Binop Instr.Shl)
      | Ast.Shr -> simple (Instr.Binop Instr.Shr)
      | Ast.Eq -> simple (Instr.Cmp Instr.Eq)
      | Ast.Ne -> simple (Instr.Cmp Instr.Ne)
      | Ast.Lt -> simple (Instr.Cmp Instr.Lt)
      | Ast.Le -> simple (Instr.Cmp Instr.Le)
      | Ast.Gt -> simple (Instr.Cmp Instr.Gt)
      | Ast.Ge -> simple (Instr.Cmp Instr.Ge)
      | Ast.Land | Ast.Lor -> assert false
    end
  | Ast.Call (name, args) ->
      List.iter (gen_expr ctx env) args;
      emit ctx (Asm.I (Instr.Call name))
  | Ast.Read -> emit ctx (Asm.I Instr.Read)
  | Ast.New n ->
      gen_expr ctx env n;
      emit ctx (Asm.I Instr.New_array)
  | Ast.Len a ->
      gen_expr ctx env a;
      emit ctx (Asm.I Instr.Array_len)

type loop_labels = { break_to : string; continue_to : string }

let rec gen_stmts ctx env loops stmts = ignore (List.fold_left (fun env s -> gen_stmt ctx env loops s) env stmts)

and gen_stmt ctx env loops (stmt : Ast.stmt) =
  match stmt with
  | Ast.Decl (_, name, e) ->
      gen_expr ctx env e;
      let slot = alloc_slot ctx in
      emit ctx (Asm.I (Instr.Store slot));
      Env.add name (Slot slot) env
  | Ast.Assign (name, e) ->
      gen_expr ctx env e;
      (match lookup env ctx name with
      | Slot s -> emit ctx (Asm.I (Instr.Store s))
      | Global g -> emit ctx (Asm.I (Instr.Set_global g)));
      env
  | Ast.Assign_index (a, i, v) ->
      gen_expr ctx env a;
      gen_expr ctx env i;
      gen_expr ctx env v;
      emit ctx (Asm.I Instr.Array_store);
      env
  | Ast.If (cond, then_, else_) ->
      let else_l = fresh_label ctx "else" and fin = fresh_label ctx "endif" in
      gen_expr ctx env cond;
      emit ctx (Asm.Br (false, else_l));
      gen_stmts ctx env loops then_;
      emit ctx (Asm.Jmp fin);
      emit ctx (Asm.L else_l);
      gen_stmts ctx env loops else_;
      emit ctx (Asm.L fin);
      env
  | Ast.While (cond, body) ->
      let head = fresh_label ctx "while" and fin = fresh_label ctx "endwhile" in
      emit ctx (Asm.L head);
      gen_expr ctx env cond;
      emit ctx (Asm.Br (false, fin));
      gen_stmts ctx env (Some { break_to = fin; continue_to = head }) body;
      emit ctx (Asm.Jmp head);
      emit ctx (Asm.L fin);
      env
  | Ast.Return e ->
      gen_expr ctx env e;
      emit ctx (Asm.I Instr.Ret);
      env
  | Ast.Print e ->
      gen_expr ctx env e;
      emit ctx (Asm.I Instr.Print);
      env
  | Ast.Expr e ->
      gen_expr ctx env e;
      emit ctx (Asm.I Instr.Pop);
      env
  | Ast.Break -> begin
      match loops with
      | Some l ->
          emit ctx (Asm.Jmp l.break_to);
          env
      | None -> invalid_arg "To_stackvm: break outside loop"
    end
  | Ast.Continue -> begin
      match loops with
      | Some l ->
          emit ctx (Asm.Jmp l.continue_to);
          env
      | None -> invalid_arg "To_stackvm: continue outside loop"
    end

let compile (prog : Ast.program) =
  ignore (Typecheck.check prog);
  let globals, _ =
    List.fold_left
      (fun (env, idx) (g : Ast.global) -> (Env.add g.Ast.gname (Global idx) env, idx + 1))
      (Env.empty, 0) prog.Ast.globals
  in
  let nglobals = List.length prog.Ast.globals in
  let compile_func (f : Ast.func) =
    let ctx = { globals; next_slot = 0; max_slot = 0; next_label = 0; items = [] } in
    let env =
      List.fold_left (fun env (_, pname) -> Env.add pname (Slot (alloc_slot ctx)) env) Env.empty f.Ast.params
    in
    (* global array allocation runs once, in front of main *)
    if f.Ast.name = "main" then
      List.iteri
        (fun idx (g : Ast.global) ->
          match g.Ast.gsize with
          | Some size ->
              emit ctx (Asm.I (Instr.Const size));
              emit ctx (Asm.I Instr.New_array);
              emit ctx (Asm.I (Instr.Set_global idx))
          | None -> ())
        prog.Ast.globals;
    gen_stmts ctx env None f.Ast.body;
    (* unreachable safety net: the verifier requires explicit termination,
       and if/while join labels may sit at the very end of the body *)
    emit ctx (Asm.I (Instr.Const 0));
    emit ctx (Asm.I Instr.Ret);
    Asm.func ~name:f.Ast.name ~nargs:(List.length f.Ast.params) ~nlocals:(max ctx.max_slot (List.length f.Ast.params))
      (List.rev ctx.items)
  in
  let program = Program.make ~nglobals (List.map compile_func prog.Ast.funcs) in
  Verify.check_exn program;
  program

let compile_source src = compile (Parser.parse src)
