(** Recursive-descent parser for MiniC.

    Grammar sketch (standard C-like precedence, lowest first):

    {v
    program   := (global | func)*
    global    := "global" ("int" IDENT | "int" IDENT "[" NUM "]"
                 | "arr" IDENT) ";"
    func      := "func" IDENT "(" params? ")" block
    params    := ("int"|"arr") IDENT ("," ("int"|"arr") IDENT)*
    block     := "{" stmt* "}"
    stmt      := decl | assign | if | while | return | print
               | break | continue | expr ";"
    decl      := ("int"|"arr") IDENT "=" expr ";"
               | "int" IDENT "[" expr "]" ";"       (sugar for new)
    expr      := "||" > "&&" > "|" > "^" > "&" > eq,ne
               > lt,le,gt,ge > shl,shr > add,sub > mul,div,rem
               > unary neg,not,bnot > postfix index/call > primary
    v} *)

exception Error of { line : int; message : string }

val parse : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error} on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
