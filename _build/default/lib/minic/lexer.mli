(** Hand-written lexer for MiniC. *)

type token =
  | INT_KW
  | ARR_KW
  | GLOBAL
  | FUNC
  | IF
  | ELSE
  | WHILE
  | RETURN
  | PRINT
  | READ
  | NEW
  | LEN
  | BREAK
  | CONTINUE
  | IDENT of string
  | NUM of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN  (** [=] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL_OP | SHR_OP
  | EQ_OP | NE_OP | LT_OP | LE_OP | GT_OP | GE_OP
  | ANDAND | OROR
  | EOF

exception Error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token stream with line numbers; comments are [//] to end of line and
    [/* ... */].  Raises {!Error} on an unexpected character. *)

val token_name : token -> string
