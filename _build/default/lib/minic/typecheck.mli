(** Static checking for MiniC.

    Two types: [int] and [arr] (a handle to an array of ints).  Checks
    name binding with block scoping, operator and argument types,
    [break]/[continue] placement, and the presence of a parameterless
    [main].  Function return types are inferred by a small fixed point
    (default [int]; lifted to [arr] when a body returns one). *)

exception Error of string

val check : Ast.program -> (string * Ast.ty) list
(** Returns the inferred return type of every function.  Raises {!Error}
    on an ill-typed program. *)

val check_opt : Ast.program -> (unit, string) result
