(* Fully parenthesized expression printing keeps the printer trivially
   faithful to the AST; readability is secondary to roundtripping. *)

let binop_symbol (op : Ast.binop) =
  match op with
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"

let rec expr_to_string (e : Ast.expr) =
  match e with
  | Num v -> if v < 0 then Printf.sprintf "(%d)" v else string_of_int v
  | Var name -> name
  | Index (a, i) -> Printf.sprintf "%s[%s]" (postfix_base a) (expr_to_string i)
  | Unary (Neg, e) -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Unary (Not, e) -> Printf.sprintf "(!%s)" (expr_to_string e)
  | Unary (BNot, e) -> Printf.sprintf "(~%s)" (expr_to_string e)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_symbol op) (expr_to_string b)
  | Call (name, args) -> Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Read -> "read()"
  | New n -> Printf.sprintf "new(%s)" (expr_to_string n)
  | Len a -> Printf.sprintf "len(%s)" (expr_to_string a)

(* index bases must stay postfix-parseable: parenthesize anything that is
   not already a postfix-primary form *)
and postfix_base (e : Ast.expr) =
  match e with
  | Var _ | Call _ | Index _ | Read | New _ | Len _ -> expr_to_string e
  | _ -> Printf.sprintf "(%s)" (expr_to_string e)

let ty_keyword (ty : Ast.ty) = match ty with Int -> "int" | Arr -> "arr"

let rec stmt_to_string ?(indent = 1) (s : Ast.stmt) =
  let pad = String.make (2 * indent) ' ' in
  let block stmts = block_to_string ~indent stmts in
  match s with
  | Decl (ty, name, e) -> Printf.sprintf "%s%s %s = %s;" pad (ty_keyword ty) name (expr_to_string e)
  | Assign (name, e) -> Printf.sprintf "%s%s = %s;" pad name (expr_to_string e)
  | Assign_index (a, i, v) ->
      Printf.sprintf "%s%s[%s] = %s;" pad (postfix_base a) (expr_to_string i) (expr_to_string v)
  | If (c, t, []) -> Printf.sprintf "%sif (%s) %s" pad (expr_to_string c) (block t)
  | If (c, t, e) -> Printf.sprintf "%sif (%s) %s else %s" pad (expr_to_string c) (block t) (block e)
  | While (c, b) -> Printf.sprintf "%swhile (%s) %s" pad (expr_to_string c) (block b)
  | Return e -> Printf.sprintf "%sreturn %s;" pad (expr_to_string e)
  | Print e -> Printf.sprintf "%sprint(%s);" pad (expr_to_string e)
  | Expr e -> Printf.sprintf "%s%s;" pad (expr_to_string e)
  | Break -> pad ^ "break;"
  | Continue -> pad ^ "continue;"

and block_to_string ~indent stmts =
  let pad = String.make (2 * indent) ' ' in
  let inner = List.map (stmt_to_string ~indent:(indent + 1)) stmts in
  Printf.sprintf "{\n%s\n%s}" (String.concat "\n" inner) pad

let func_to_string (f : Ast.func) =
  let params = String.concat ", " (List.map (fun (ty, n) -> ty_keyword ty ^ " " ^ n) f.Ast.params) in
  Printf.sprintf "func %s(%s) %s" f.Ast.name params (block_to_string ~indent:0 f.Ast.body)

let global_to_string (g : Ast.global) =
  match (g.Ast.gty, g.Ast.gsize) with
  | Ast.Int, _ -> Printf.sprintf "global int %s;" g.Ast.gname
  | Ast.Arr, Some n -> Printf.sprintf "global int %s[%d];" g.Ast.gname n
  | Ast.Arr, None -> Printf.sprintf "global arr %s;" g.Ast.gname

let to_string (p : Ast.program) =
  String.concat "\n\n" (List.map global_to_string p.Ast.globals @ List.map func_to_string p.Ast.funcs)
  ^ "\n"
