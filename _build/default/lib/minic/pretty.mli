(** Pretty-printing MiniC back to concrete syntax.

    [Parser.parse (to_string ast)] yields an AST equal to [ast] (up to
    nothing — the printer is injective on well-formed programs), which the
    test suite checks by property.  Useful for emitting generated or
    transformed programs as source. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val func_to_string : Ast.func -> string
val to_string : Ast.program -> string
