exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

module Env = Map.Make (String)

let rec expr_ty ~funcs ~rets env (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.Num _ | Ast.Read -> Ast.Int
  | Ast.Var name -> begin
      match Env.find_opt name env with
      | Some ty -> ty
      | None -> fail "unbound variable %s" name
    end
  | Ast.Index (a, i) ->
      require ~funcs ~rets env a Ast.Arr "array index base";
      require ~funcs ~rets env i Ast.Int "array index";
      Ast.Int
  | Ast.Unary (_, e) ->
      require ~funcs ~rets env e Ast.Int "unary operand";
      Ast.Int
  | Ast.Bin ((Ast.Eq | Ast.Ne), a, b) ->
      (* equality works at both types, but they must agree *)
      let ta = expr_ty ~funcs ~rets env a in
      let tb = expr_ty ~funcs ~rets env b in
      if ta <> tb then fail "equality between %a and %a" Ast.pp_ty ta Ast.pp_ty tb;
      Ast.Int
  | Ast.Bin (_, a, b) ->
      require ~funcs ~rets env a Ast.Int "left operand";
      require ~funcs ~rets env b Ast.Int "right operand";
      Ast.Int
  | Ast.Call (name, args) -> begin
      match Env.find_opt name funcs with
      | None -> fail "call to unknown function %s" name
      | Some params ->
          if List.length params <> List.length args then
            fail "%s expects %d argument(s), got %d" name (List.length params) (List.length args);
          List.iter2
            (fun (ty, pname) arg -> require ~funcs ~rets env arg ty ("argument " ^ pname))
            params args;
          Option.value ~default:Ast.Int (Hashtbl.find_opt rets name)
    end
  | Ast.New n ->
      require ~funcs ~rets env n Ast.Int "array length";
      Ast.Arr
  | Ast.Len a ->
      require ~funcs ~rets env a Ast.Arr "len operand";
      Ast.Int

and require ~funcs ~rets env e ty what =
  let found = expr_ty ~funcs ~rets env e in
  if found <> ty then fail "%s: expected %a, found %a" what Ast.pp_ty ty Ast.pp_ty found

(* Returns whether the statement list definitely returns on every path (a
   weak check used to ensure functions cannot fall off the end). *)
let rec check_stmts ~funcs ~rets ~fname ~in_loop env stmts =
  match stmts with
  | [] -> (env, false)
  | stmt :: rest ->
      let env, returns = check_stmt ~funcs ~rets ~fname ~in_loop env stmt in
      let env, rest_returns = check_stmts ~funcs ~rets ~fname ~in_loop env rest in
      (env, returns || rest_returns)

and check_stmt ~funcs ~rets ~fname ~in_loop env (stmt : Ast.stmt) =
  match stmt with
  | Ast.Decl (ty, name, e) ->
      require ~funcs ~rets env e ty ("initializer of " ^ name);
      (Env.add name ty env, false)
  | Ast.Assign (name, e) -> begin
      match Env.find_opt name env with
      | None -> fail "assignment to unbound variable %s" name
      | Some ty ->
          require ~funcs ~rets env e ty ("assignment to " ^ name);
          (env, false)
    end
  | Ast.Assign_index (a, i, v) ->
      require ~funcs ~rets env a Ast.Arr "indexed assignment base";
      require ~funcs ~rets env i Ast.Int "index";
      require ~funcs ~rets env v Ast.Int "stored value";
      (env, false)
  | Ast.If (cond, then_, else_) ->
      require ~funcs ~rets env cond Ast.Int "if condition";
      let _, r1 = check_stmts ~funcs ~rets ~fname ~in_loop env then_ in
      let _, r2 = check_stmts ~funcs ~rets ~fname ~in_loop env else_ in
      (env, r1 && r2 && else_ <> [])
  | Ast.While (cond, body) ->
      require ~funcs ~rets env cond Ast.Int "while condition";
      let _, _ = check_stmts ~funcs ~rets ~fname ~in_loop:true env body in
      (env, false)
  | Ast.Return e ->
      let ty = expr_ty ~funcs ~rets env e in
      (match Hashtbl.find_opt rets fname with
      | None -> Hashtbl.replace rets fname ty
      | Some prior ->
          if prior <> ty then fail "%s returns both %a and %a" fname Ast.pp_ty prior Ast.pp_ty ty);
      (env, true)
  | Ast.Print e ->
      require ~funcs ~rets env e Ast.Int "print operand";
      (env, false)
  | Ast.Expr e ->
      ignore (expr_ty ~funcs ~rets env e);
      (env, false)
  | Ast.Break | Ast.Continue ->
      if not in_loop then fail "%s: break/continue outside a loop" fname;
      (env, false)

let check (prog : Ast.program) =
  (* global environment *)
  let rec build_globals env = function
    | [] -> env
    | (g : Ast.global) :: rest ->
        if Env.mem g.Ast.gname env then fail "duplicate global %s" g.Ast.gname;
        build_globals (Env.add g.Ast.gname g.Ast.gty env) rest
  in
  let genv = build_globals Env.empty prog.Ast.globals in
  let funcs =
    List.fold_left
      (fun acc (f : Ast.func) ->
        if Env.mem f.Ast.name acc then fail "duplicate function %s" f.Ast.name;
        Env.add f.Ast.name f.Ast.params acc)
      Env.empty prog.Ast.funcs
  in
  (match Env.find_opt "main" funcs with
  | None -> fail "no main function"
  | Some [] -> ()
  | Some _ -> fail "main must take no parameters");
  let rets = Hashtbl.create 16 in
  let check_func (f : Ast.func) =
    let param_names = List.map snd f.Ast.params in
    if List.length (List.sort_uniq compare param_names) <> List.length param_names then
      fail "%s: duplicate parameter" f.Ast.name;
    let env = List.fold_left (fun env (ty, name) -> Env.add name ty env) genv f.Ast.params in
    let _, returns = check_stmts ~funcs ~rets ~fname:f.Ast.name ~in_loop:false env f.Ast.body in
    if not returns then fail "%s: control may reach the end without a return" f.Ast.name
  in
  (* fixed point on inferred return types (calls may precede definitions) *)
  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) rets [] in
  let rec iterate guard =
    if guard = 0 then fail "return-type inference did not converge";
    let before = List.sort compare (snapshot ()) in
    List.iter check_func prog.Ast.funcs;
    let after = List.sort compare (snapshot ()) in
    if before <> after then iterate (guard - 1)
  in
  iterate 4;
  (match Hashtbl.find_opt rets "main" with
  | Some Ast.Int | None -> ()
  | Some Ast.Arr -> fail "main must return int");
  List.map (fun (f : Ast.func) -> (f.Ast.name, Option.value ~default:Ast.Int (Hashtbl.find_opt rets f.Ast.name))) prog.Ast.funcs

let check_opt prog = match check prog with _ -> Ok () | exception Error m -> Error m
