(** Compile MiniC to the native machine — the "gcc -O0" of this project.

    Conventions: frame pointer in register 7; arguments pushed left to
    right by the caller and popped after return; result in register 0;
    locals below the frame pointer.  Arrays are bump-allocated from a heap
    region at the end of the data section, with the length in a header
    word; out-of-bounds accesses and heap exhaustion jump to a trap stub.
    Global scalars and array handles live in labelled data words; global
    arrays are allocated by the startup stub, which then calls [fn_main]
    and halts.

    The emitted program is a {!Nativesim.Asm.program}, the representation
    the branch-function watermarker embeds into. *)

val heap_words : int
(** Size of the bump-allocation region. *)

val compile : Ast.program -> Nativesim.Asm.program
(** The program must typecheck. *)

val compile_source : string -> Nativesim.Asm.program

val compile_binary : string -> Nativesim.Binary.t
(** [compile_source] followed by assembly. *)
