type outcome = Finished of int | Runtime_error of string | Out_of_fuel

type result = { outcome : outcome; outputs : int list }

exception Error of string
exception Fuel
exception Return_exn of int
exception Break_exn
exception Continue_exn

type state = {
  globals : (string, int ref) Hashtbl.t;
  heap : (int, int array) Hashtbl.t;
  mutable next_handle : int;
  mutable inputs : int list;
  mutable outputs : int list;
  mutable fuel : int;
  funcs : (string, Ast.func) Hashtbl.t;
}

let tick st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Fuel

let alloc st n =
  if n < 0 then raise (Error "negative array length");
  let h = st.next_handle in
  st.next_handle <- h + 1;
  Hashtbl.replace st.heap h (Array.make n 0);
  h

let deref st h =
  match Hashtbl.find_opt st.heap h with
  | Some arr -> arr
  | None -> raise (Error "invalid array handle")

let shift_left_checked a b =
  let c = b land 0x3F in
  if c >= 63 then 0 else a lsl c

let shift_right_checked a b =
  let c = b land 0x3F in
  if c >= 63 then if a < 0 then -1 else 0 else a asr c

let bool_int b = if b then 1 else 0

let rec eval st env (e : Ast.expr) =
  tick st;
  match e with
  | Ast.Num v -> v
  | Ast.Var name -> !(lookup st env name)
  | Ast.Index (a, i) ->
      let arr = deref st (eval st env a) in
      let idx = eval st env i in
      if idx < 0 || idx >= Array.length arr then raise (Error "array index out of bounds");
      arr.(idx)
  | Ast.Unary (op, e) -> begin
      let v = eval st env e in
      match op with
      | Ast.Neg -> -v
      | Ast.Not -> bool_int (v = 0)
      | Ast.BNot -> lnot v
    end
  | Ast.Bin (Ast.Land, a, b) -> if eval st env a = 0 then 0 else bool_int (eval st env b <> 0)
  | Ast.Bin (Ast.Lor, a, b) -> if eval st env a <> 0 then 1 else bool_int (eval st env b <> 0)
  | Ast.Bin (op, a, b) -> begin
      let x = eval st env a in
      let y = eval st env b in
      match op with
      | Ast.Add -> x + y
      | Ast.Sub -> x - y
      | Ast.Mul -> x * y
      | Ast.Div -> if y = 0 then raise (Error "division by zero") else x / y
      | Ast.Rem -> if y = 0 then raise (Error "remainder by zero") else x mod y
      | Ast.Band -> x land y
      | Ast.Bor -> x lor y
      | Ast.Bxor -> x lxor y
      | Ast.Shl -> shift_left_checked x y
      | Ast.Shr -> shift_right_checked x y
      | Ast.Eq -> bool_int (x = y)
      | Ast.Ne -> bool_int (x <> y)
      | Ast.Lt -> bool_int (x < y)
      | Ast.Le -> bool_int (x <= y)
      | Ast.Gt -> bool_int (x > y)
      | Ast.Ge -> bool_int (x >= y)
      | Ast.Land | Ast.Lor -> assert false
    end
  | Ast.Call (name, args) ->
      let values = List.map (eval st env) args in
      call st name values
  | Ast.Read -> begin
      match st.inputs with
      | [] -> raise (Error "input exhausted")
      | v :: rest ->
          st.inputs <- rest;
          v
    end
  | Ast.New n -> alloc st (eval st env n)
  | Ast.Len a -> Array.length (deref st (eval st env a))

and lookup st env name =
  match Hashtbl.find_opt env name with
  | Some cell -> cell
  | None -> begin
      match Hashtbl.find_opt st.globals name with
      | Some cell -> cell
      | None -> raise (Error ("unbound variable " ^ name))
    end

and call st name values =
  let f =
    match Hashtbl.find_opt st.funcs name with
    | Some f -> f
    | None -> raise (Error ("unknown function " ^ name))
  in
  let env = Hashtbl.create 16 in
  List.iter2 (fun (_, pname) v -> Hashtbl.replace env pname (ref v)) f.Ast.params values;
  match exec_block st env f.Ast.body with
  | () -> raise (Error (name ^ " fell off the end"))
  | exception Return_exn v -> v

and exec_block st env stmts =
  (* a block gets a scope: declarations are removed when it ends *)
  let declared = ref [] in
  let cleanup () =
    List.iter (fun (name, prior) ->
        match prior with
        | Some cell -> Hashtbl.replace env name cell
        | None -> Hashtbl.remove env name)
      !declared
  in
  (try List.iter (exec st env declared) stmts
   with e ->
     cleanup ();
     raise e);
  cleanup ()

and exec st env declared (stmt : Ast.stmt) =
  tick st;
  match stmt with
  | Ast.Decl (_, name, e) ->
      let v = eval st env e in
      declared := (name, Hashtbl.find_opt env name) :: !declared;
      Hashtbl.replace env name (ref v)
  | Ast.Assign (name, e) -> lookup st env name := eval st env e
  | Ast.Assign_index (a, i, v) ->
      let arr = deref st (eval st env a) in
      let idx = eval st env i in
      let value = eval st env v in
      if idx < 0 || idx >= Array.length arr then raise (Error "array index out of bounds");
      arr.(idx) <- value
  | Ast.If (cond, then_, else_) ->
      if eval st env cond <> 0 then exec_block st env then_ else exec_block st env else_
  | Ast.While (cond, body) -> begin
      try
        while eval st env cond <> 0 do
          try exec_block st env body with Continue_exn -> ()
        done
      with Break_exn -> ()
    end
  | Ast.Return e -> raise (Return_exn (eval st env e))
  | Ast.Print e -> st.outputs <- eval st env e :: st.outputs
  | Ast.Expr e -> ignore (eval st env e)
  | Ast.Break -> raise Break_exn
  | Ast.Continue -> raise Continue_exn

let run ?(fuel = 50_000_000) (prog : Ast.program) ~input =
  let st =
    {
      globals = Hashtbl.create 16;
      heap = Hashtbl.create 64;
      next_handle = 1;
      inputs = input;
      outputs = [];
      fuel;
      funcs = Hashtbl.create 16;
    }
  in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace st.funcs f.Ast.name f) prog.Ast.funcs;
  List.iter
    (fun (g : Ast.global) ->
      let initial = match g.Ast.gsize with None -> 0 | Some n -> alloc st n in
      Hashtbl.replace st.globals g.Ast.gname (ref initial))
    prog.Ast.globals;
  let outcome =
    match call st "main" [] with
    | v -> Finished v
    | exception Error m -> Runtime_error m
    | exception Fuel -> Out_of_fuel
  in
  { outcome; outputs = List.rev st.outputs }
