(** Abstract syntax of MiniC.

    MiniC is the small imperative language our benchmark workloads are
    written in; it compiles to both execution substrates (the stack VM of
    the Java track and the native machine of the IA-32 track), standing in
    for the Java and C sources of the paper's benchmark programs.  Values
    are 63-bit integers; arrays are first-class handles (a VM heap handle
    or a native pointer). *)

type ty = Int | Arr

type unop = Neg | Not | BNot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuiting *)

type expr =
  | Num of int
  | Var of string
  | Index of expr * expr  (** [a\[i\]] *)
  | Unary of unop * expr
  | Bin of binop * expr * expr
  | Call of string * expr list
  | Read  (** [read()] *)
  | New of expr  (** [new(n)]: zero-filled array of length n *)
  | Len of expr  (** [len(a)] *)

type stmt =
  | Decl of ty * string * expr  (** [int x = e;] / [arr a = e;] *)
  | Assign of string * expr
  | Assign_index of expr * expr * expr  (** [a\[i\] = e;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | Print of expr
  | Expr of expr
  | Break
  | Continue

type func = { name : string; params : (ty * string) list; body : stmt list }

type global = { gname : string; gty : ty; gsize : int option  (** array size *) }

type program = { globals : global list; funcs : func list }

val pp_ty : Format.formatter -> ty -> unit
