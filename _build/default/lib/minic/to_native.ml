open Nativesim

module Env = Map.Make (String)

let heap_words = 40_000

let fp = 7
let sp = Insn.sp

type binding = Local of int  (** slot index, at [fp - 8*(slot+1)] *) | Param of int | Global of string

type ctx = {
  globals : binding Env.t;
  nparams : int;
  mutable next_slot : int;
  mutable items : Asm.item list;  (** reversed *)
}

let emit ctx item = ctx.items <- item :: ctx.items

let emit_all ctx items = List.iter (emit ctx) items

(* labels must be unique across the whole text section, not per function *)
let label_counter = ref 0

let fresh _ctx prefix =
  let n = !label_counter in
  incr label_counter;
  Printf.sprintf "c_%s_%d" prefix n

let alloc_slot ctx =
  let s = ctx.next_slot in
  ctx.next_slot <- s + 1;
  s

let global_label name = "g_" ^ name
let func_label name = "fn_" ^ name

let lookup env ctx name =
  match Env.find_opt name env with
  | Some b -> b
  | None -> begin
      match Env.find_opt name ctx.globals with
      | Some b -> b
      | None -> invalid_arg ("To_native: unbound " ^ name)
    end

(* address of a binding, as load/store through fp or a data label *)
let load_binding ctx env name reg =
  match lookup env ctx name with
  | Local slot -> emit ctx (Asm.I (Insn.Load (reg, fp, -8 * (slot + 1))))
  | Param j -> emit ctx (Asm.I (Insn.Load (reg, fp, 16 + (8 * (ctx.nparams - 1 - j)))))
  | Global name -> emit ctx (Asm.Load_lbl (reg, Asm.Lbl (global_label name)))

let store_binding ctx env name reg =
  match lookup env ctx name with
  | Local slot -> emit ctx (Asm.I (Insn.Store (fp, -8 * (slot + 1), reg)))
  | Param j -> emit ctx (Asm.I (Insn.Store (fp, 16 + (8 * (ctx.nparams - 1 - j)), reg)))
  | Global name -> emit ctx (Asm.Store_lbl (Asm.Lbl (global_label name), reg))

(* r0 = array header, r1 = index; trap unless 0 <= r1 < length; leaves the
   element address in r0 *)
let emit_bounds_check_and_addr ctx =
  let ok = fresh ctx "bounds_ok" in
  emit_all ctx
    Asm.[
      I (Insn.Load (2, 0, 0)) (* length *);
      I (Insn.Cmp (1, 2));
      Jcc (Insn.Ge, Lbl "c_trap");
      I (Insn.Cmp_imm (1, 0));
      Jcc (Insn.Lt, Lbl "c_trap");
      L ok;
      I (Insn.Mov (2, 1));
      I (Insn.Alu_imm (Insn.Shl, 2, 3));
      I (Insn.Alu (Insn.Add, 0, 2));
    ]

let rec gen_expr ctx env (e : Ast.expr) =
  match e with
  | Ast.Num v ->
      emit ctx (Asm.I (Insn.Mov_imm (0, v)));
      emit ctx (Asm.I (Insn.Push 0))
  | Ast.Var name ->
      load_binding ctx env name 0;
      emit ctx (Asm.I (Insn.Push 0))
  | Ast.Index (a, i) ->
      gen_expr ctx env a;
      gen_expr ctx env i;
      emit ctx (Asm.I (Insn.Pop 1));
      emit ctx (Asm.I (Insn.Pop 0));
      emit_bounds_check_and_addr ctx;
      emit ctx (Asm.I (Insn.Load (0, 0, 8)));
      emit ctx (Asm.I (Insn.Push 0))
  | Ast.Unary (Ast.Neg, e) ->
      gen_expr ctx env e;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Mov_imm (1, 0)); I (Insn.Alu (Insn.Sub, 1, 0)); I (Insn.Push 1) ]
  | Ast.Unary (Ast.Not, e) ->
      gen_expr ctx env e;
      let t = fresh ctx "not_t" and fin = fresh ctx "not_e" in
      emit_all ctx
        Asm.[
          I (Insn.Pop 0);
          I (Insn.Cmp_imm (0, 0));
          Jcc (Insn.Eq, Lbl t);
          I (Insn.Mov_imm (0, 0));
          Jmp (Lbl fin);
          L t;
          I (Insn.Mov_imm (0, 1));
          L fin;
          I (Insn.Push 0);
        ]
  | Ast.Unary (Ast.BNot, e) ->
      gen_expr ctx env e;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Mov_imm (1, -1)); I (Insn.Alu (Insn.Xor, 0, 1)); I (Insn.Push 0) ]
  | Ast.Bin (Ast.Land, a, b) ->
      let rhs = fresh ctx "and_rhs" and fin = fresh ctx "and_end" in
      gen_expr ctx env a;
      emit_all ctx
        Asm.[ I (Insn.Pop 0); I (Insn.Cmp_imm (0, 0)); Jcc (Insn.Ne, Lbl rhs); I (Insn.Mov_imm (0, 0)); I (Insn.Push 0); Jmp (Lbl fin); L rhs ];
      gen_expr ctx env b;
      let t = fresh ctx "and_t" in
      emit_all ctx
        Asm.[
          I (Insn.Pop 0);
          I (Insn.Cmp_imm (0, 0));
          Jcc (Insn.Ne, Lbl t);
          I (Insn.Mov_imm (0, 0));
          I (Insn.Push 0);
          Jmp (Lbl fin);
          L t;
          I (Insn.Mov_imm (0, 1));
          I (Insn.Push 0);
          L fin;
        ]
  | Ast.Bin (Ast.Lor, a, b) ->
      let rhs = fresh ctx "or_rhs" and fin = fresh ctx "or_end" in
      gen_expr ctx env a;
      emit_all ctx
        Asm.[ I (Insn.Pop 0); I (Insn.Cmp_imm (0, 0)); Jcc (Insn.Eq, Lbl rhs); I (Insn.Mov_imm (0, 1)); I (Insn.Push 0); Jmp (Lbl fin); L rhs ];
      gen_expr ctx env b;
      let t = fresh ctx "or_t" in
      emit_all ctx
        Asm.[
          I (Insn.Pop 0);
          I (Insn.Cmp_imm (0, 0));
          Jcc (Insn.Ne, Lbl t);
          I (Insn.Mov_imm (0, 0));
          I (Insn.Push 0);
          Jmp (Lbl fin);
          L t;
          I (Insn.Mov_imm (0, 1));
          I (Insn.Push 0);
          L fin;
        ]
  | Ast.Bin (op, a, b) -> begin
      gen_expr ctx env a;
      gen_expr ctx env b;
      emit ctx (Asm.I (Insn.Pop 1));
      emit ctx (Asm.I (Insn.Pop 0));
      let alu kind =
        emit ctx (Asm.I (Insn.Alu (kind, 0, 1)));
        emit ctx (Asm.I (Insn.Push 0))
      in
      let cmp cc =
        let t = fresh ctx "cmp_t" and fin = fresh ctx "cmp_e" in
        emit_all ctx
          Asm.[
            I (Insn.Cmp (0, 1));
            Jcc (cc, Lbl t);
            I (Insn.Mov_imm (0, 0));
            Jmp (Lbl fin);
            L t;
            I (Insn.Mov_imm (0, 1));
            L fin;
            I (Insn.Push 0);
          ]
      in
      match op with
      | Ast.Add -> alu Insn.Add
      | Ast.Sub -> alu Insn.Sub
      | Ast.Mul -> alu Insn.Mul
      | Ast.Div -> alu Insn.Div
      | Ast.Rem -> alu Insn.Rem
      | Ast.Band -> alu Insn.And
      | Ast.Bor -> alu Insn.Or
      | Ast.Bxor -> alu Insn.Xor
      | Ast.Shl -> alu Insn.Shl
      | Ast.Shr -> alu Insn.Sar
      | Ast.Eq -> cmp Insn.Eq
      | Ast.Ne -> cmp Insn.Ne
      | Ast.Lt -> cmp Insn.Lt
      | Ast.Le -> cmp Insn.Le
      | Ast.Gt -> cmp Insn.Gt
      | Ast.Ge -> cmp Insn.Ge
      | Ast.Land | Ast.Lor -> assert false
    end
  | Ast.Call (name, args) ->
      List.iter (gen_expr ctx env) args;
      emit ctx (Asm.Call (Asm.Lbl (func_label name)));
      if args <> [] then emit ctx (Asm.I (Insn.Alu_imm (Insn.Add, sp, 8 * List.length args)));
      emit ctx (Asm.I (Insn.Push 0))
  | Ast.Read ->
      emit ctx (Asm.I (Insn.In 0));
      emit ctx (Asm.I (Insn.Push 0))
  | Ast.New n ->
      gen_expr ctx env n;
      emit_all ctx
        Asm.[
          I (Insn.Pop 0) (* length *);
          I (Insn.Cmp_imm (0, 0));
          Jcc (Insn.Lt, Lbl "c_trap");
          Load_lbl (1, Lbl "c_heap_ptr") (* header address *);
          I (Insn.Store (1, 0, 0)) (* header = length *);
          (* bump: new ptr = old + 8 + 8*len, check against heap end *)
          I (Insn.Mov (2, 0));
          I (Insn.Alu_imm (Insn.Shl, 2, 3));
          I (Insn.Alu (Insn.Add, 2, 1));
          I (Insn.Alu_imm (Insn.Add, 2, 8));
          Mov_lbl (3, Lbl "c_heap_end");
          I (Insn.Cmp (2, 3));
          Jcc (Insn.Gt, Lbl "c_trap");
          Store_lbl (Lbl "c_heap_ptr", 2);
          I (Insn.Push 1);
        ]
  | Ast.Len a ->
      gen_expr ctx env a;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Load (0, 0, 0)); I (Insn.Push 0) ]

type loop_labels = { break_to : string; continue_to : string }

let rec gen_stmts ctx env loops stmts = ignore (List.fold_left (fun env s -> gen_stmt ctx env loops s) env stmts)

and gen_stmt ctx env loops (stmt : Ast.stmt) =
  match stmt with
  | Ast.Decl (_, name, e) ->
      gen_expr ctx env e;
      let slot = alloc_slot ctx in
      let env = Env.add name (Local slot) env in
      emit ctx (Asm.I (Insn.Pop 0));
      store_binding ctx env name 0;
      env
  | Ast.Assign (name, e) ->
      gen_expr ctx env e;
      emit ctx (Asm.I (Insn.Pop 0));
      store_binding ctx env name 0;
      env
  | Ast.Assign_index (a, i, v) ->
      gen_expr ctx env a;
      gen_expr ctx env i;
      gen_expr ctx env v;
      emit_all ctx Asm.[ I (Insn.Pop 3) (* value *); I (Insn.Pop 1) (* idx *); I (Insn.Pop 0) (* arr *) ];
      emit_bounds_check_and_addr ctx;
      emit ctx (Asm.I (Insn.Store (0, 8, 3)));
      env
  | Ast.If (cond, then_, else_) ->
      let else_l = fresh ctx "else" and fin = fresh ctx "endif" in
      gen_expr ctx env cond;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Cmp_imm (0, 0)); Jcc (Insn.Eq, Lbl else_l) ];
      gen_stmts ctx env loops then_;
      emit ctx (Asm.Jmp (Asm.Lbl fin));
      emit ctx (Asm.L else_l);
      gen_stmts ctx env loops else_;
      emit ctx (Asm.L fin);
      env
  | Ast.While (cond, body) ->
      let head = fresh ctx "while" and fin = fresh ctx "endwhile" in
      emit ctx (Asm.L head);
      gen_expr ctx env cond;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Cmp_imm (0, 0)); Jcc (Insn.Eq, Lbl fin) ];
      gen_stmts ctx env (Some { break_to = fin; continue_to = head }) body;
      emit ctx (Asm.Jmp (Asm.Lbl head));
      emit ctx (Asm.L fin);
      env
  | Ast.Return e ->
      gen_expr ctx env e;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Mov (sp, fp)); I (Insn.Pop fp); I Insn.Ret ];
      env
  | Ast.Print e ->
      gen_expr ctx env e;
      emit_all ctx Asm.[ I (Insn.Pop 0); I (Insn.Out 0) ];
      env
  | Ast.Expr e ->
      gen_expr ctx env e;
      emit ctx (Asm.I (Insn.Pop 0));
      env
  | Ast.Break -> begin
      match loops with
      | Some l ->
          emit ctx (Asm.Jmp (Asm.Lbl l.break_to));
          env
      | None -> invalid_arg "To_native: break outside loop"
    end
  | Ast.Continue -> begin
      match loops with
      | Some l ->
          emit ctx (Asm.Jmp (Asm.Lbl l.continue_to));
          env
      | None -> invalid_arg "To_native: continue outside loop"
    end

let rec count_decls stmts =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      acc
      +
      match s with
      | Ast.Decl _ -> 1
      | Ast.If (_, a, b) -> count_decls a + count_decls b
      | Ast.While (_, b) -> count_decls b
      | _ -> 0)
    0 stmts

let compile (prog : Ast.program) =
  ignore (Typecheck.check prog);
  let globals =
    List.fold_left
      (fun env (g : Ast.global) -> Env.add g.Ast.gname (Global g.Ast.gname) env)
      Env.empty prog.Ast.globals
  in
  let compile_func (f : Ast.func) =
    let nparams = List.length f.Ast.params in
    let ctx = { globals; nparams; next_slot = 0; items = [] } in
    let env =
      List.fold_left
        (fun (env, j) (_, pname) -> (Env.add pname (Param j) env, j + 1))
        (Env.empty, 0) f.Ast.params
      |> fst
    in
    let nlocals = count_decls f.Ast.body in
    emit ctx (Asm.L (func_label f.Ast.name));
    emit_all ctx Asm.[ I (Insn.Push fp); I (Insn.Mov (fp, sp)) ];
    if nlocals > 0 then emit ctx (Asm.I (Insn.Alu_imm (Insn.Sub, sp, 8 * nlocals)));
    gen_stmts ctx env None f.Ast.body;
    (* unreachable net for dangling join labels *)
    emit_all ctx Asm.[ I (Insn.Mov_imm (0, 0)); I (Insn.Mov (sp, fp)); I (Insn.Pop fp); I Insn.Ret ];
    List.rev ctx.items
  in
  (* startup stub: heap init, global array allocation, call main, halt *)
  let startup =
    let ctx = { globals; nparams = 0; next_slot = 0; items = [] } in
    emit_all ctx Asm.[ Mov_lbl (0, Lbl "c_heap_area"); Store_lbl (Lbl "c_heap_ptr", 0) ];
    List.iter
      (fun (g : Ast.global) ->
        match g.Ast.gsize with
        | Some size ->
            gen_expr ctx Env.empty (Ast.New (Ast.Num size));
            emit ctx (Asm.I (Insn.Pop 0));
            emit ctx (Asm.Store_lbl (Asm.Lbl (global_label g.Ast.gname), 0))
        | None -> ())
      prog.Ast.globals;
    emit_all ctx
      Asm.[
        Call (Lbl (func_label "main"));
        I Insn.Halt;
        (* trap stub: force a machine trap via an invalid access *)
        L "c_trap";
        I (Insn.Mov_imm (0, -8));
        I (Insn.Load (0, 0, 0));
        I Insn.Halt;
      ];
    List.rev ctx.items
  in
  let text = startup @ List.concat_map compile_func prog.Ast.funcs in
  let data =
    List.concat_map
      (fun (g : Ast.global) -> Asm.[ Dlabel (global_label g.Ast.gname); Dword 0 ])
      prog.Ast.globals
    @ Asm.[ Dlabel "c_heap_ptr"; Dword 0; Dlabel "c_heap_area"; Dspace heap_words; Dlabel "c_heap_end" ]
  in
  { Asm.text; data }

let compile_source src = compile (Parser.parse src)

let compile_binary src = Asm.assemble (compile_source src)
