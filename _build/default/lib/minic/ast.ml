type ty = Int | Arr

type unop = Neg | Not | BNot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type expr =
  | Num of int
  | Var of string
  | Index of expr * expr
  | Unary of unop * expr
  | Bin of binop * expr * expr
  | Call of string * expr list
  | Read
  | New of expr
  | Len of expr

type stmt =
  | Decl of ty * string * expr
  | Assign of string * expr
  | Assign_index of expr * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | Print of expr
  | Expr of expr
  | Break
  | Continue

type func = { name : string; params : (ty * string) list; body : stmt list }

type global = { gname : string; gty : ty; gsize : int option }

type program = { globals : global list; funcs : func list }

let pp_ty fmt = function Int -> Format.pp_print_string fmt "int" | Arr -> Format.pp_print_string fmt "arr"
