lib/minic/to_stackvm.ml: Asm Ast Instr List Map Parser Printf Program Stackvm String Typecheck Verify
