lib/minic/to_native.mli: Ast Nativesim
