lib/minic/to_stackvm.mli: Ast Stackvm
