lib/minic/lexer.mli:
