lib/minic/to_native.ml: Asm Ast Insn List Map Nativesim Parser Printf String Typecheck
