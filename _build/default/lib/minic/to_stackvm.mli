(** Compile MiniC to the stack VM — the "javac" of this project.

    Each MiniC function becomes a VM function; parameters occupy the first
    local slots and every declaration gets a fresh slot (block scoping by
    construction).  Global arrays are allocated by a prologue spliced in
    front of [main].  The output always passes {!Stackvm.Verify.check}. *)

val compile : Ast.program -> Stackvm.Program.t
(** The program must typecheck ({!Typecheck.check}); raises
    [Invalid_argument] on internal inconsistencies otherwise. *)

val compile_source : string -> Stackvm.Program.t
(** Parse, typecheck and compile. *)
