exception Error of { line : int; message : string }

type state = { mutable tokens : (Lexer.token * int) list }

let peek st = match st.tokens with [] -> (Lexer.EOF, 0) | t :: _ -> t

let line st = snd (peek st)

let fail st message = raise (Error { line = line st; message })

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let next st =
  let tok = fst (peek st) in
  advance st;
  tok

let expect st tok =
  let got = fst (peek st) in
  if got = tok then advance st
  else fail st (Printf.sprintf "expected %s, found %s" (Lexer.token_name tok) (Lexer.token_name got))

let expect_ident st =
  match next st with
  | Lexer.IDENT name -> name
  | got -> fail st (Printf.sprintf "expected identifier, found %s" (Lexer.token_name got))

(* ---- expressions ---- *)

let rec parse_primary st =
  match next st with
  | Lexer.NUM v -> Ast.Num v
  | Lexer.READ ->
      expect st Lexer.LPAREN;
      expect st Lexer.RPAREN;
      Ast.Read
  | Lexer.NEW ->
      expect st Lexer.LPAREN;
      let e = parse_expr_prec st 0 in
      expect st Lexer.RPAREN;
      Ast.New e
  | Lexer.LEN ->
      expect st Lexer.LPAREN;
      let e = parse_expr_prec st 0 in
      expect st Lexer.RPAREN;
      Ast.Len e
  | Lexer.IDENT name ->
      if fst (peek st) = Lexer.LPAREN then begin
        advance st;
        let args = parse_args st in
        Ast.Call (name, args)
      end
      else Ast.Var name
  | Lexer.LPAREN ->
      let e = parse_expr_prec st 0 in
      expect st Lexer.RPAREN;
      e
  | got -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.token_name got))

and parse_args st =
  if fst (peek st) = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr_prec st 0 in
      match next st with
      | Lexer.COMMA -> go (e :: acc)
      | Lexer.RPAREN -> List.rev (e :: acc)
      | got -> fail st (Printf.sprintf "expected ',' or ')', found %s" (Lexer.token_name got))
    in
    go []
  end

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match fst (peek st) with
    | Lexer.LBRACKET ->
        advance st;
        let idx = parse_expr_prec st 0 in
        expect st Lexer.RBRACKET;
        e := Ast.Index (!e, idx)
    | _ -> continue := false
  done;
  !e

and parse_unary st =
  match fst (peek st) with
  | Lexer.MINUS -> begin
      advance st;
      (* fold negation of literals so printed negative constants reparse
         to the same AST *)
      match parse_unary st with
      | Ast.Num n -> Ast.Num (-n)
      | e -> Ast.Unary (Ast.Neg, e)
    end
  | Lexer.BANG ->
      advance st;
      Ast.Unary (Ast.Not, parse_unary st)
  | Lexer.TILDE ->
      advance st;
      Ast.Unary (Ast.BNot, parse_unary st)
  | _ -> parse_postfix st

(* precedence climbing: level n handles operators of precedence >= n *)
and binop_of_token = function
  | Lexer.OROR -> Some (Ast.Lor, 1)
  | Lexer.ANDAND -> Some (Ast.Land, 2)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.EQ_OP -> Some (Ast.Eq, 6)
  | Lexer.NE_OP -> Some (Ast.Ne, 6)
  | Lexer.LT_OP -> Some (Ast.Lt, 7)
  | Lexer.LE_OP -> Some (Ast.Le, 7)
  | Lexer.GT_OP -> Some (Ast.Gt, 7)
  | Lexer.GE_OP -> Some (Ast.Ge, 7)
  | Lexer.SHL_OP -> Some (Ast.Shl, 8)
  | Lexer.SHR_OP -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | _ -> None

and parse_expr_prec st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (fst (peek st)) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        (* left associative: parse the right side at one level tighter *)
        let rhs = parse_expr_prec st (prec + 1) in
        lhs := Ast.Bin (op, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

let parse_expression st = parse_expr_prec st 0

(* ---- statements ---- *)

let rec parse_stmt st =
  match fst (peek st) with
  | Lexer.INT_KW ->
      advance st;
      let name = expect_ident st in
      (match next st with
      | Lexer.ASSIGN ->
          let e = parse_expression st in
          expect st Lexer.SEMI;
          Ast.Decl (Ast.Int, name, e)
      | Lexer.LBRACKET ->
          (* `int a[e];` is sugar for `arr a = new(e);` *)
          let size = parse_expression st in
          expect st Lexer.RBRACKET;
          expect st Lexer.SEMI;
          Ast.Decl (Ast.Arr, name, Ast.New size)
      | got -> fail st (Printf.sprintf "expected '=' or '[', found %s" (Lexer.token_name got)))
  | Lexer.ARR_KW ->
      advance st;
      let name = expect_ident st in
      expect st Lexer.ASSIGN;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      Ast.Decl (Ast.Arr, name, e)
  | Lexer.IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expression st in
      expect st Lexer.RPAREN;
      let then_ = parse_block st in
      let else_ =
        if fst (peek st) = Lexer.ELSE then begin
          advance st;
          if fst (peek st) = Lexer.IF then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      Ast.If (cond, then_, else_)
  | Lexer.WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expression st in
      expect st Lexer.RPAREN;
      let body = parse_block st in
      Ast.While (cond, body)
  | Lexer.RETURN ->
      advance st;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      Ast.Return e
  | Lexer.PRINT ->
      advance st;
      expect st Lexer.LPAREN;
      let e = parse_expression st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Ast.Print e
  | Lexer.BREAK ->
      advance st;
      expect st Lexer.SEMI;
      Ast.Break
  | Lexer.CONTINUE ->
      advance st;
      expect st Lexer.SEMI;
      Ast.Continue
  | _ ->
      (* assignment or expression statement *)
      let e = parse_expression st in
      (match (fst (peek st), e) with
      | Lexer.ASSIGN, Ast.Var name ->
          advance st;
          let rhs = parse_expression st in
          expect st Lexer.SEMI;
          Ast.Assign (name, rhs)
      | Lexer.ASSIGN, Ast.Index (arr, idx) ->
          advance st;
          let rhs = parse_expression st in
          expect st Lexer.SEMI;
          Ast.Assign_index (arr, idx, rhs)
      | Lexer.ASSIGN, _ -> fail st "left side of '=' must be a variable or an index"
      | _ ->
          expect st Lexer.SEMI;
          Ast.Expr e)

and parse_block st =
  expect st Lexer.LBRACE;
  let rec go acc =
    if fst (peek st) = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---- top level ---- *)

let parse_global st =
  expect st Lexer.GLOBAL;
  match next st with
  | Lexer.INT_KW ->
      let name = expect_ident st in
      (match next st with
      | Lexer.SEMI -> { Ast.gname = name; gty = Ast.Int; gsize = None }
      | Lexer.LBRACKET -> begin
          match next st with
          | Lexer.NUM size ->
              expect st Lexer.RBRACKET;
              expect st Lexer.SEMI;
              { Ast.gname = name; gty = Ast.Arr; gsize = Some size }
          | got -> fail st (Printf.sprintf "expected array size, found %s" (Lexer.token_name got))
        end
      | got -> fail st (Printf.sprintf "expected ';' or '[', found %s" (Lexer.token_name got)))
  | Lexer.ARR_KW ->
      (* a global cell that will hold an array handle; starts null *)
      let name = expect_ident st in
      expect st Lexer.SEMI;
      { Ast.gname = name; gty = Ast.Arr; gsize = None }
  | got -> fail st (Printf.sprintf "expected 'int' or 'arr', found %s" (Lexer.token_name got))

let parse_func st =
  expect st Lexer.FUNC;
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    if fst (peek st) = Lexer.RPAREN then begin
      advance st;
      []
    end
    else begin
      let param () =
        let ty =
          match next st with
          | Lexer.INT_KW -> Ast.Int
          | Lexer.ARR_KW -> Ast.Arr
          | got -> fail st (Printf.sprintf "expected parameter type, found %s" (Lexer.token_name got))
        in
        (ty, expect_ident st)
      in
      let rec go acc =
        let p = param () in
        match next st with
        | Lexer.COMMA -> go (p :: acc)
        | Lexer.RPAREN -> List.rev (p :: acc)
        | got -> fail st (Printf.sprintf "expected ',' or ')', found %s" (Lexer.token_name got))
      in
      go []
    end
  in
  let body = parse_block st in
  { Ast.name; params; body }

let parse src =
  let st = { tokens = Lexer.tokenize src } in
  let rec go globals funcs =
    match fst (peek st) with
    | Lexer.EOF -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.GLOBAL -> go (parse_global st :: globals) funcs
    | Lexer.FUNC -> go globals (parse_func st :: funcs)
    | got -> fail st (Printf.sprintf "expected 'global' or 'func', found %s" (Lexer.token_name got))
  in
  go [] []

let parse_expr src =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Lexer.EOF;
  e
