(** Reference interpreter for MiniC.

    A direct AST walker, used as the semantic oracle in differential tests
    against both compilers: for any program and input, the stack-VM build
    and the native build must reproduce exactly this interpreter's
    outputs. *)

type outcome =
  | Finished of int  (** [main]'s result *)
  | Runtime_error of string
  | Out_of_fuel

type result = { outcome : outcome; outputs : int list }

val run : ?fuel:int -> Ast.program -> input:int list -> result
(** [fuel] (default 50 million evaluation steps) bounds execution. The
    program must already typecheck. *)
