type token =
  | INT_KW
  | ARR_KW
  | GLOBAL
  | FUNC
  | IF
  | ELSE
  | WHILE
  | RETURN
  | PRINT
  | READ
  | NEW
  | LEN
  | BREAK
  | CONTINUE
  | IDENT of string
  | NUM of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL_OP | SHR_OP
  | EQ_OP | NE_OP | LT_OP | LE_OP | GT_OP | GE_OP
  | ANDAND | OROR
  | EOF

exception Error of { line : int; message : string }

let keyword = function
  | "int" -> Some INT_KW
  | "arr" -> Some ARR_KW
  | "global" -> Some GLOBAL
  | "func" -> Some FUNC
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "return" -> Some RETURN
  | "print" -> Some PRINT
  | "read" -> Some READ
  | "new" -> Some NEW
  | "len" -> Some LEN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let fail message = raise (Error { line = !line; message }) in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> emit (NUM v)
      | None -> fail ("number out of range: " ^ text)
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      emit (match keyword text with Some kw -> kw | None -> IDENT text)
    end
    else begin
      let two tok = emit tok; i := !i + 2 in
      let one tok = emit tok; incr i in
      match (c, peek 1) with
      | '<', Some '<' -> two SHL_OP
      | '>', Some '>' -> two SHR_OP
      | '=', Some '=' -> two EQ_OP
      | '!', Some '=' -> two NE_OP
      | '<', Some '=' -> two LE_OP
      | '>', Some '=' -> two GE_OP
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '<', _ -> one LT_OP
      | '>', _ -> one GT_OP
      | '=', _ -> one ASSIGN
      | '!', _ -> one BANG
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | _ -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !tokens

let token_name = function
  | INT_KW -> "'int'"
  | ARR_KW -> "'arr'"
  | GLOBAL -> "'global'"
  | FUNC -> "'func'"
  | IF -> "'if'"
  | ELSE -> "'else'"
  | WHILE -> "'while'"
  | RETURN -> "'return'"
  | PRINT -> "'print'"
  | READ -> "'read'"
  | NEW -> "'new'"
  | LEN -> "'len'"
  | BREAK -> "'break'"
  | CONTINUE -> "'continue'"
  | IDENT s -> Printf.sprintf "identifier %s" s
  | NUM v -> Printf.sprintf "number %d" v
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | SHL_OP -> "'<<'"
  | SHR_OP -> "'>>'"
  | EQ_OP -> "'=='"
  | NE_OP -> "'!='"
  | LT_OP -> "'<'"
  | LE_OP -> "'<='"
  | GT_OP -> "'>'"
  | GE_OP -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | EOF -> "end of input"
