open Stackvm

(* Each shape pushes the boolean result of a comparison whose outcome is
   independent of the variable's value.  Identities are chosen to survive
   63-bit wrap-around: multiplication and addition preserve residues modulo
   any power of two, so tests modulo 2 and 4 are safe (the VM's Rem takes
   the dividend's sign, so "even" must be tested as [rem = 0] and parity-1
   as [rem <> 0]). *)

(* x*(x+1) is even: rem 2 gives 0 exactly. *)
let even_product slot = [ Instr.Load slot; Instr.Dup; Instr.Const 1; Instr.Binop Add; Instr.Binop Mul; Instr.Const 2; Instr.Binop Rem ]

(* x*x + x is even. *)
let even_square_plus slot =
  [ Instr.Load slot; Instr.Dup; Instr.Dup; Instr.Binop Mul; Instr.Binop Add; Instr.Const 2; Instr.Binop Rem ]

(* x*x mod 4 is never 2 (squares are 0 or 1 mod 4; with the dividend's sign
   the VM may also produce -3, never +/-2). *)
let square_mod4 slot = [ Instr.Load slot; Instr.Dup; Instr.Binop Mul; Instr.Const 4; Instr.Binop Rem ]

(* (x | 1) is odd: rem 2 is 1 or -1, never 0. *)
let forced_odd slot = [ Instr.Load slot; Instr.Const 1; Instr.Binop Or; Instr.Const 2; Instr.Binop Rem ]

(* x & 1 is never 2. *)
let low_bit slot = [ Instr.Load slot; Instr.Const 1; Instr.Binop And ]

let false_shapes =
  [|
    (fun slot -> even_product slot @ [ Instr.Const 0; Instr.Cmp Instr.Ne ]);
    (fun slot -> even_square_plus slot @ [ Instr.Const 0; Instr.Cmp Instr.Ne ]);
    (fun slot -> square_mod4 slot @ [ Instr.Const 2; Instr.Cmp Instr.Eq ]);
    (fun slot -> forced_odd slot @ [ Instr.Const 0; Instr.Cmp Instr.Eq ]);
    (fun slot -> low_bit slot @ [ Instr.Const 2; Instr.Cmp Instr.Eq ]);
  |]

let true_shapes =
  [|
    (fun slot -> even_product slot @ [ Instr.Const 0; Instr.Cmp Instr.Eq ]);
    (fun slot -> even_square_plus slot @ [ Instr.Const 0; Instr.Cmp Instr.Eq ]);
    (fun slot -> square_mod4 slot @ [ Instr.Const 2; Instr.Cmp Instr.Ne ]);
    (fun slot -> forced_odd slot @ [ Instr.Const 0; Instr.Cmp Instr.Ne ]);
    (fun slot -> low_bit slot @ [ Instr.Const 2; Instr.Cmp Instr.Ne ]);
  |]

let variant_count = Array.length false_shapes

let false_variant index ~slot =
  if index < 0 || index >= variant_count then invalid_arg "Opaque.false_variant";
  false_shapes.(index) slot

let true_variant index ~slot =
  if index < 0 || index >= variant_count then invalid_arg "Opaque.true_variant";
  true_shapes.(index) slot

let false_predicate rng ~slot = false_variant (Util.Prng.int rng variant_count) ~slot

let true_predicate rng ~slot = true_variant (Util.Prng.int rng variant_count) ~slot
