(** The opaque predicate library (the paper's OPL, after Collberg,
    Thomborson and Low).

    An opaque predicate is an expression whose constant truth value is
    known to the embedder but hard to recover by static analysis.  The
    embedder guards never-executed updates of live variables with opaquely
    false predicates so that inserted watermark code cannot be removed as
    dead (Section 3.2.1).

    Every generated snippet is straight-line stack code (no internal
    branches) that reads one local variable and pushes 0 (opaquely false)
    or 1 (opaquely true).  All identities used are preserved by the VM's
    two's-complement wrap-around, including for negative operands. *)

val false_predicate : Util.Prng.t -> slot:int -> Stackvm.Instr.t list
(** Push a value that is always 0, computed from local [slot]. *)

val true_predicate : Util.Prng.t -> slot:int -> Stackvm.Instr.t list
(** Push a value that is always 1 (as a 0/1 comparison result). *)

val variant_count : int
(** Number of distinct predicate shapes per polarity (for tests). *)

val false_variant : int -> slot:int -> Stackvm.Instr.t list
(** A specific opaquely false shape, [0 <= index < variant_count]. *)

val true_variant : int -> slot:int -> Stackvm.Instr.t list
