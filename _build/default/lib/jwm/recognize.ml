type outcome = {
  value : Bignum.t option;
  report : Codec.Recombine.report;
  trace_branches : int;
  steps : int;
}

let recognize ?(fuel = 200_000_000) ?(strides = [ 1; 2 ]) ~passphrase ~watermark_bits ~input prog =
  let params = Codec.Params.make ~passphrase ~watermark_bits () in
  let trace = Stackvm.Trace.capture ~fuel ~want_snapshots:false prog ~input in
  let bits = Stackvm.Trace.bitstring trace in
  let report = Codec.Recombine.recover_from_bitstring ~strides params bits in
  {
    value = report.Codec.Recombine.value;
    report;
    trace_branches = Array.length trace.Stackvm.Trace.branches;
    steps = trace.Stackvm.Trace.result.Stackvm.Interp.steps;
  }

let recognizes ?fuel ~passphrase ~watermark_bits ~input ~expected prog =
  match (recognize ?fuel ~passphrase ~watermark_bits ~input prog).value with
  | Some v -> Bignum.equal v expected
  | None -> false
