lib/jwm/recognize.ml: Array Bignum Codec Stackvm
