lib/jwm/embed.ml: Array Bignum Codec Codegen Hashtbl Instr Interp List Option Program Rewrite Serialize Stackvm Stdlib Trace Util Verify
