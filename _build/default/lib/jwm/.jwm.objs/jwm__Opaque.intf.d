lib/jwm/opaque.mli: Stackvm Util
