lib/jwm/codegen.ml: Array Asm Instr List Opaque Printf Stackvm Trace Util
