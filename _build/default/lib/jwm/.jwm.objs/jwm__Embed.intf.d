lib/jwm/embed.mli: Bignum Codec Stackvm
