lib/jwm/recognize.mli: Bignum Codec Stackvm
