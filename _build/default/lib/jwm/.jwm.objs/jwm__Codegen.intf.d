lib/jwm/codegen.mli: Stackvm Util
