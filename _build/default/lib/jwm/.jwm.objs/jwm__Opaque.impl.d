lib/jwm/opaque.ml: Array Instr Stackvm Util
