(** The recognition phase (Section 3.3) — dynamic, blind fingerprinting.

    Recognition re-runs the (possibly attacked) program on the secret
    input, decodes the trace into its bit-string, harvests candidate cipher
    blocks at strides 1 and 2, and recombines the watermark.  Only the
    program, the passphrase and the secret input are needed — never the
    original program or the expected watermark. *)

type outcome = {
  value : Bignum.t option;  (** the recovered fingerprint, if any *)
  report : Codec.Recombine.report;
  trace_branches : int;  (** dynamic conditional-branch count *)
  steps : int;  (** instructions executed during the recognition run *)
}

val recognize :
  ?fuel:int ->
  ?strides:int list ->
  passphrase:string ->
  watermark_bits:int ->
  input:int list ->
  Stackvm.Program.t ->
  outcome
(** [fuel] defaults to 200 million instructions; a program that traps or
    exhausts fuel still yields whatever trace prefix was collected (an
    attacked program that crashes can destroy the mark — that is a valid
    experimental outcome, not an exception). *)

val recognizes :
  ?fuel:int ->
  passphrase:string ->
  watermark_bits:int ->
  input:int list ->
  expected:Bignum.t ->
  Stackvm.Program.t ->
  bool
(** Fingerprint check: recovered value equals [expected]. *)
