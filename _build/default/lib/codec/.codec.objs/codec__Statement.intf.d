lib/codec/statement.mli: Bignum Format Numtheory Params
