lib/codec/statement.ml: Array Bignum Crypto Format List Numtheory Params Stdlib
