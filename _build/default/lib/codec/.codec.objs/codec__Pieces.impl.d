lib/codec/pieces.ml: Array Params Statement Util
