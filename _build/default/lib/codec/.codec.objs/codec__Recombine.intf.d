lib/codec/recombine.mli: Bignum Params Statement Util
