lib/codec/params.mli: Bignum Crypto
