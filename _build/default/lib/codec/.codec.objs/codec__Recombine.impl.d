lib/codec/recombine.ml: Array Bignum Fun Hashtbl List Numtheory Option Params Statement Stdlib Util
