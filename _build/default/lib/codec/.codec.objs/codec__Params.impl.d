lib/codec/params.ml: Array Bignum Char Crypto Int64 Numtheory String Util
