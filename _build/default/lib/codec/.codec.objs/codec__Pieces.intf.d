lib/codec/pieces.mli: Bignum Params Statement Util
