type t = { i : int; j : int; x : int }

let compare a b = Stdlib.compare (a.i, a.j, a.x) (b.i, b.j, b.x)
let equal a b = compare a b = 0
let pp fmt { i; j; x } = Format.fprintf fmt "W = %d (mod p%d*p%d)" x i j

let check_pair (params : Params.t) i j =
  let r = Array.length params.primes in
  if i < 0 || j <= i || j >= r then invalid_arg "Statement: bad prime pair"

let modulus (params : Params.t) s =
  check_pair params s.i s.j;
  params.primes.(s.i) * params.primes.(s.j)

let of_watermark params w ~pair:(i, j) =
  check_pair params i j;
  if not (Params.fits params w) then invalid_arg "Statement.of_watermark: watermark out of range";
  let m = params.primes.(i) * params.primes.(j) in
  let x = Bignum.to_int (Bignum.erem w (Bignum.of_int m)) in
  { i; j; x }

let all_of_watermark params w =
  let r = Params.r params in
  let acc = ref [] in
  for i = r - 1 downto 0 do
    for j = r - 1 downto i + 1 do
      acc := of_watermark params w ~pair:(i, j) :: !acc
    done
  done;
  !acc

let to_congruence params s = Numtheory.Gcrt.make_int ~residue:s.x ~modulus:(modulus params s)

(* Pairs are enumerated lexicographically: (0,1), (0,2), ..., (0,r-1),
   (1,2), ...; each pair owns a contiguous range of size p_i*p_j. *)
let pair_offset (params : Params.t) i j =
  let r = Array.length params.primes in
  let off = ref 0 in
  (try
     for a = 0 to r - 1 do
       for b = a + 1 to r - 1 do
         if a = i && b = j then raise Exit;
         off := !off + (params.primes.(a) * params.primes.(b))
       done
     done;
     invalid_arg "Statement.pair_offset: bad pair"
   with Exit -> ());
  !off

let enumerate params s =
  check_pair params s.i s.j;
  let m = modulus params s in
  if s.x < 0 || s.x >= m then invalid_arg "Statement.enumerate: residue out of range";
  pair_offset params s.i s.j + s.x

let unenumerate (params : Params.t) v =
  if v < 0 then None
  else begin
    let r = Array.length params.primes in
    let rec scan i j off =
      if i >= r - 1 then None
      else if j >= r then scan (i + 1) (i + 2) off
      else begin
        let m = params.primes.(i) * params.primes.(j) in
        if v < off + m then Some { i; j; x = v - off } else scan i (j + 1) (off + m)
      end
    in
    scan 0 1 0
  end

let encode params s = Crypto.Feistel.encrypt params.Params.cipher (enumerate params s)

let decode params block =
  match Crypto.Feistel.decrypt params.Params.cipher block with
  | v -> unenumerate params v
  | exception Invalid_argument _ -> None

let bits params s =
  let encoded = encode params s in
  List.init params.Params.block_bits (fun k -> (encoded lsr k) land 1 = 1)

let shared_primes a b =
  List.filter_map
    (fun (pa, pb) -> if pa = pb then Some pa else None)
    [ (a.i, b.i); (a.i, b.j); (a.j, b.i); (a.j, b.j) ]

let consistent (params : Params.t) a b =
  if a.i = b.i && a.j = b.j then a.x = b.x
  else
    List.for_all
      (fun idx -> a.x mod params.primes.(idx) = b.x mod params.primes.(idx))
      (shared_primes a b)

let agreeing_prime (params : Params.t) a b =
  if equal a b then None
  else
    List.find_opt
      (fun idx -> a.x mod params.primes.(idx) = b.x mod params.primes.(idx))
      (shared_primes a b)
