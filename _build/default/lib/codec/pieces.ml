let min_full_cover = Params.pair_count

let select params ~rng ~watermark ~count =
  if count < 0 then invalid_arg "Pieces.select: negative count";
  if not (Params.fits params watermark) then invalid_arg "Pieces.select: watermark out of range";
  let all = Array.of_list (Statement.all_of_watermark params watermark) in
  let n = Array.length all in
  let out = ref [] in
  let remaining = ref count in
  while !remaining > 0 do
    let round = Array.copy all in
    Util.Prng.shuffle rng round;
    let take = min !remaining n in
    for k = 0 to take - 1 do
      out := round.(k) :: !out
    done;
    remaining := !remaining - take
  done;
  !out
