type t = { primes : int array; cipher : Crypto.Feistel.t; block_bits : int }

let seed_of_passphrase passphrase =
  let h = ref 0x811C9DC5A2B39F17L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    passphrase;
  !h

let enumeration_total primes =
  let r = Array.length primes in
  let total = ref 0 in
  for i = 0 to r - 1 do
    for j = i + 1 to r - 1 do
      let pair = primes.(i) * primes.(j) in
      if !total > max_int - pair then invalid_arg "Params: enumeration range overflows int";
      total := !total + pair
    done
  done;
  !total

let make ?(prime_bits = 25) ?(block_bits = Crypto.Feistel.default_block_bits) ~passphrase ~watermark_bits () =
  if watermark_bits < 1 then invalid_arg "Params.make: watermark_bits must be positive";
  if prime_bits < 8 || prime_bits > 30 then invalid_arg "Params.make: prime_bits out of [8, 30]";
  (* Primes of exactly [prime_bits] bits are at least 2^(prime_bits-1), so r
     primes give a capacity of at least 2^(r*(prime_bits-1)). *)
  let r = (watermark_bits + prime_bits - 2) / (prime_bits - 1) in
  let r = max r 2 in
  let rng = Util.Prng.create (seed_of_passphrase passphrase) in
  let primes = Array.of_list (Numtheory.Ints.coprime_moduli ~rng ~bits:prime_bits ~count:r) in
  let total = enumeration_total primes in
  if block_bits < 62 && total lsr block_bits <> 0 then
    invalid_arg "Params.make: piece enumeration does not fit the cipher block";
  let cipher = Crypto.Feistel.of_passphrase ~block_bits (passphrase ^ "|piece-cipher") in
  { primes; cipher; block_bits }

let r t = Array.length t.primes

let pair_count t =
  let n = r t in
  n * (n - 1) / 2

let capacity t = Array.fold_left (fun acc p -> Bignum.mul acc (Bignum.of_int p)) Bignum.one t.primes

let max_watermark_bits t =
  let cap = capacity t in
  (* largest n such that 2^n <= cap *)
  let bits = Bignum.num_bits cap in
  if Bignum.equal cap (Bignum.shift_left Bignum.one (bits - 1)) then bits - 1 else bits - 1

let fits t w = Bignum.sign w >= 0 && Bignum.compare w (capacity t) < 0
