(** Watermark codec parameters.

    Everything the embedder and the (blind) recognizer must agree on is
    derived deterministically from the watermark {e key} — a passphrase —
    so that recognition needs only the watermarked program and the key:
    the pairwise relatively prime base moduli [p_1 < ... < p_r], and the
    block cipher applied to encoded pieces. *)

type t = private {
  primes : int array;  (** sorted, pairwise distinct primes *)
  cipher : Crypto.Feistel.t;
  block_bits : int;  (** width of an encoded piece, [= Feistel.block_bits cipher] *)
}

val make : ?prime_bits:int -> ?block_bits:int -> passphrase:string -> watermark_bits:int -> unit -> t
(** [make ~passphrase ~watermark_bits ()] chooses the smallest number [r] of
    [prime_bits]-bit primes (default 25) such that any watermark below
    [2^watermark_bits] is below the product of the primes, then draws the
    primes and the cipher key from the passphrase.  Raises
    [Invalid_argument] when the enumeration range of all [r*(r-1)/2] residue
    statements would not fit in a [block_bits]-bit cipher block. *)

val r : t -> int
(** Number of base primes. *)

val pair_count : t -> int
(** Number of distinct pieces, [r*(r-1)/2]. *)

val capacity : t -> Bignum.t
(** Product of the primes: watermarks must be strictly below this. *)

val max_watermark_bits : t -> int
(** Largest [n] with [2^n <= capacity], i.e. any n-bit watermark fits. *)

val fits : t -> Bignum.t -> bool
(** Whether a watermark value is representable (nonnegative and below
    {!capacity}). *)
