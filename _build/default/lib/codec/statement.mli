(** Watermark pieces as residue statements, and their integer encoding.

    A piece is the statement [W = x (mod p_i * p_j)] for a pair of base
    primes.  Step B of Figure 3 maps each statement injectively to an
    integer with the pair-enumeration scheme — every ordered pair [(i, j)]
    ([i < j]) owns a contiguous range of size [p_i * p_j] — and then
    encrypts that integer with the piece cipher. *)

type t = { i : int; j : int; x : int }
(** [W = x mod (primes.(i) * primes.(j))], with [0 <= i < j < r] and
    [0 <= x < primes.(i) * primes.(j)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val modulus : Params.t -> t -> int
(** [primes.(i) * primes.(j)]. *)

val of_watermark : Params.t -> Bignum.t -> pair:int * int -> t
(** [of_watermark params w ~pair:(i, j)] is the true statement about [w]
    for that prime pair. Raises [Invalid_argument] on a bad pair or a
    watermark that does not fit. *)

val all_of_watermark : Params.t -> Bignum.t -> t list
(** All [r*(r-1)/2] true statements, in pair-enumeration order. *)

val to_congruence : Params.t -> t -> Numtheory.Gcrt.congruence

val enumerate : Params.t -> t -> int
(** The enumeration index (before encryption). *)

val unenumerate : Params.t -> int -> t option
(** Inverse of {!enumerate}; [None] when the value falls outside the total
    enumeration range (a garbage block). *)

val encode : Params.t -> t -> int
(** [encode params s] = cipher(enumerate s): the bit pattern the embedder
    must make appear in the trace bit-string. *)

val decode : Params.t -> int -> t option
(** [decode params block] decrypts and unenumerates a candidate cipher
    block from the trace. *)

val bits : Params.t -> t -> bool list
(** The encoded piece as bits, least-significant first — exactly the branch
    pattern the inserted code must produce. *)

val consistent : Params.t -> t -> t -> bool
(** Whether the two statements can both hold of one watermark (they agree
    modulo every base prime they share; statements on the same pair must be
    identical). *)

val agreeing_prime : Params.t -> t -> t -> int option
(** [agreeing_prime params a b] is a prime index shared by [a] and [b] on
    which their residues agree — the adjacency criterion of the paper's
    graph [H] — if one exists. Distinct statements only; [None] for
    [equal a b]. *)
