(** Redundant piece selection.

    The embedder spreads [count] pieces over the program (Figure 8 of the
    paper sweeps this count from 0 to 500).  With [r*(r-1)/2] distinct
    statements available, redundancy comes from inserting statements more
    than once; coverage of every base prime is what recovery ultimately
    needs, so selection cycles through all pairs before repeating any. *)

val select : Params.t -> rng:Util.Prng.t -> watermark:Bignum.t -> count:int -> Statement.t list
(** [select params ~rng ~watermark ~count] returns [count] true statements
    about [watermark].  Each full round over the (shuffled) pair list is
    completed before the next begins, so any [count >= pair_count params]
    covers every prime.  Raises [Invalid_argument] if the watermark does
    not fit. *)

val min_full_cover : Params.t -> int
(** The piece count of one full round, [pair_count params]. *)
