open Nativesim

type placement = Region | Scattered

type report = {
  binary : Binary.t;
  begin_addr : int;
  end_addr : int;
  f_entry : int;
  bits : int;
  call_slots : int list;
  tamper_cells : int;
  bytes_before : int;
  bytes_after : int;
}

let slot_label j = Printf.sprintf "wm_s%d" j
let cell_label c = Printf.sprintf "wm_m%d" c

(* Mirror the assembler's first pass to find each text item's address. *)
let item_addresses items =
  let addrs = ref [] in
  let cursor = ref Layout.text_base in
  List.iter
    (fun item ->
      addrs := !cursor :: !addrs;
      cursor := !cursor + Asm.item_size item)
    items;
  List.rev !addrs

let embed ?(seed = 0xBEEF_CAFEL) ?(tamper_proof = true) ?(placement = Region) ?(obfuscate_jumps = 0)
    ?fuel ~watermark ~bits ~training_input (prog : Asm.program) =
  if Bignum.sign watermark < 0 || Bignum.num_bits watermark > bits then
    invalid_arg "Nwm.Embed.embed: watermark does not fit";
  let rng = Util.Prng.create seed in
  let w = Bignum.to_bits watermark ~width:bits in
  let k = bits in
  let pi = Bitperm.slots w in
  let base_bin = Asm.assemble prog in
  let bytes_before = Binary.size base_bin in
  (* --- tamper-proofing candidates: cold direct jumps of the original --- *)
  let candidates =
    if not tamper_proof then []
    else begin
      let profile = Profile.run ?fuel base_bin ~input:training_input in
      (* static loop membership (§4.3: candidates must not be in a loop) *)
      let cfg = Cfg.build base_bin in
      let loop_set = Hashtbl.create 64 in
      List.iter (fun l -> Hashtbl.replace loop_set l ()) (Cfg.loop_leaders cfg);
      let leader_of = Hashtbl.create 256 in
      List.iter
        (fun (b : Cfg.block) ->
          List.iter (fun (a, _) -> Hashtbl.replace leader_of a b.Cfg.leader) b.Cfg.insns)
        (Cfg.blocks cfg);
      (* Candidates: direct jumps that either sit outside every natural
         loop, or execute at most a handful of times — the paper's "not
         part of a loop" requirement exists to avoid performance
         degradation, and a cold loop degrades nothing. *)
      let out_of_loop addr =
        match Hashtbl.find_opt leader_of addr with
        | Some leader -> not (Hashtbl.mem loop_set leader)
        | None -> false
      in
      let cold addr = out_of_loop addr || Profile.count profile addr <= 4 in
      let rec collect idx items addrs acc =
        match (items, addrs) with
        | [], _ | _, [] -> List.rev acc
        | item :: items', addr :: addrs' ->
            let acc =
              match item with
              | Asm.Jmp (Asm.Lbl target) when cold addr -> (idx, target, Profile.count profile addr) :: acc
              | _ -> acc
            in
            collect (idx + 1) items' addrs' acc
      in
      let all = collect 0 prog.Asm.text (item_addresses prog.Asm.text) [] in
      (* prefer the least-executed jumps that still execute on the training
         input: a missed tamper update on one of those is sure to break the
         program, whereas a never-executed jump breaks only exotic runs *)
      let executed, unexecuted = List.partition (fun (_, _, c) -> c >= 1) all in
      let executed = List.sort (fun (_, _, c1) (_, _, c2) -> Stdlib.compare c1 c2) executed in
      List.filteri (fun i _ -> i < k) (executed @ unexecuted)
      |> List.map (fun (idx, target, _) -> (idx, target))
    end
  in
  let chosen = Hashtbl.create 16 in
  List.iteri (fun c (idx, target) -> Hashtbl.replace chosen idx (c, target)) candidates;
  let transformed_text =
    List.mapi
      (fun idx item ->
        match Hashtbl.find_opt chosen idx with
        | Some (c, _) -> Asm.Jmp_ind (Asm.Lbl (cell_label c))
        | None -> item)
      prog.Asm.text
  in
  (* §4.2.1: route some ordinary direct jumps through the branch function
     as decoys — a call and a jump encode in the same five bytes, so the
     swap does not disturb the layout *)
  let obf_label i = Printf.sprintf "wm_obf%d" i
  and obf_targets = Hashtbl.create 8 in
  let transformed_text =
    if obfuscate_jumps <= 0 then transformed_text
    else begin
      let taken = ref 0 in
      List.mapi
        (fun idx item ->
          match item with
          | Asm.Jmp (Asm.Lbl target)
            when !taken < obfuscate_jumps && not (Hashtbl.mem chosen idx) ->
              let i = !taken in
              incr taken;
              Hashtbl.replace obf_targets i target;
              (* the label marks the decoy call so phase A can read its key *)
              Asm.L (obf_label i)
          | other -> other)
        transformed_text
      |> List.concat_map (fun item ->
             match item with
             | Asm.L name when String.length name > 6 && String.sub name 0 6 = "wm_obf" ->
                 [ item; Asm.Call (Asm.Lbl Branchfn.entry_label) ]
             | other -> [ other ])
    end
  in
  (* --- call slot placement --- *)
  (* Region: a dedicated block of k+1 slots, each preceded by a jump.
     Scattered: the slots are spliced into the original text right after
     existing unconditional jumps, in address order, so the same visit
     permutation spells the bits. *)
  let slotted_text =
    match placement with
    | Region ->
        let region =
          List.concat
            (List.init (k + 1) (fun j ->
                 Asm.[ Jmp (Lbl "wm_end"); L (slot_label j); Call (Lbl Branchfn.entry_label) ]))
        in
        region @ [ Asm.L "wm_end" ] @ transformed_text
    | Scattered ->
        let is_anchor = function
          | Asm.Jmp _ | Asm.Jmp_ind _ -> true
          | Asm.I i -> Insn.is_unconditional i
          | _ -> false
        in
        let anchors =
          List.mapi (fun idx item -> (idx, item)) transformed_text
          |> List.filter_map (fun (idx, item) -> if is_anchor item then Some idx else None)
        in
        let n_anchors = List.length anchors in
        if n_anchors < k + 1 then
          invalid_arg
            (Printf.sprintf
               "Nwm.Embed: scattered placement needs %d insertion points, program has %d" (k + 1)
               n_anchors);
        (* pick k+1 anchors spread evenly across the text, in address order *)
        let anchors = Array.of_list anchors in
        let chosen = Hashtbl.create 16 in
        for j = 0 to k do
          let idx = anchors.(j * n_anchors / (k + 1)) in
          Hashtbl.replace chosen idx j
        done;
        let spliced =
          List.concat
            (List.mapi
               (fun idx item ->
                 match Hashtbl.find_opt chosen idx with
                 | Some j -> [ item; Asm.L (slot_label j); Asm.Call (Asm.Lbl Branchfn.entry_label) ]
                 | None -> [ item ])
               transformed_text)
        in
        (Asm.L "wm_end" :: spliced)
  in
  let frame_pad = 8 * Util.Prng.int rng 4 in
  let text_of ~shift =
    Asm.[ L "wm_begin"; Jmp (Lbl (slot_label pi.(0))) ]
    @ slotted_text
    @ Branchfn.code ~shift ~frame_pad
  in
  let data_of ~d ~t ~u ~cells =
    prog.Asm.data
    @ (Asm.Dlabel Branchfn.d_label :: List.map (fun v -> Asm.Dword v) (Array.to_list d))
    @ (Asm.Dlabel Branchfn.t_label :: List.map (fun v -> Asm.Dword v) (Array.to_list t))
    @ (Asm.Dlabel Branchfn.u_label :: List.map (fun v -> Asm.Dword v) (Array.to_list u))
    @ List.concat (List.mapi (fun c v -> Asm.[ Dlabel (cell_label c); Dword v ]) cells)
  in
  (* --- phase A: placeholder link to learn every address --- *)
  let zeros n = Array.make n 0 in
  let cells0 = List.map (fun _ -> 0) candidates in
  let phase_a =
    Asm.assemble ~entry:"wm_begin"
      { Asm.text = text_of ~shift:0; data = data_of ~d:(zeros Branchfn.d_words) ~t:(zeros Branchfn.t_words) ~u:(zeros Branchfn.u_words) ~cells:cells0 }
  in
  let sym = Binary.symbol phase_a in
  let end_addr = sym "wm_end" in
  let slot_addr j = sym (slot_label j) in
  (* chain order: a_0 .. a_k with a_i at slot pi.(i) *)
  let chain = List.init (k + 1) (fun i -> slot_addr pi.(i)) in
  let keys = List.map (fun a -> a + 5) chain in
  let obf_entries =
    Hashtbl.fold (fun i target acc -> (sym (obf_label i) + 5, target) :: acc) obf_targets []
  in
  let hash = Phash.build ~rng ~keys:(keys @ List.map fst obf_entries) in
  let text_end = Binary.text_end phase_a in
  (* redirect table: T[h(key_i)] = key_i xor dst_i *)
  let t = Array.init Branchfn.t_words (fun _ -> Util.Prng.bits rng 31) in
  List.iteri
    (fun i key ->
      let dst = if i < k then slot_addr pi.(i + 1) else end_addr in
      t.(Phash.eval hash key) <- key lxor dst)
    keys;
  List.iter
    (fun (key, target) -> t.(Phash.eval hash key) <- key lxor sym target)
    obf_entries;
  (* tamper updates: candidate c rides on chain call c *)
  let u = zeros Branchfn.u_words in
  let cell_inits =
    List.mapi
      (fun c (_, target) ->
        let init = Layout.text_base + Util.Prng.int rng (text_end - Layout.text_base) in
        let key = List.nth keys c in
        let row = Phash.eval hash key in
        u.(2 * row) <- sym (cell_label c);
        u.((2 * row) + 1) <- init lxor sym target;
        init)
      candidates
  in
  (* --- phase B: the real link --- *)
  let binary =
    Asm.assemble ~entry:"wm_begin"
      { Asm.text = text_of ~shift:hash.Phash.shift; data = data_of ~d:hash.Phash.displace ~t ~u ~cells:cell_inits }
  in
  (* layout must be identical across phases *)
  assert (Binary.symbol binary "wm_end" = end_addr);
  assert (String.length binary.Binary.text = String.length phase_a.Binary.text);
  {
    binary;
    begin_addr = sym "wm_begin";
    end_addr;
    f_entry = sym Branchfn.entry_label;
    bits;
    call_slots = chain;
    tamper_cells = List.length candidates;
    bytes_before;
    bytes_after = Binary.size binary;
  }
