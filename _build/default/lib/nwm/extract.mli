(** Watermark extraction (§4.2.3).

    A single-stepping tracer observes execution between [begin] and [end],
    identifies the branch function (the callee whose return does not come
    back to the call site), recovers the chain of call sites
    [a_0 .. a_k], and decodes one bit per adjacent address pair.

    Two tracers are provided, mirroring §5.2.2's discussion of the
    rerouting attack:
    - the {b simple} tracer takes [a_i] to be the instruction that
      transferred control into the branch function — fooled by a
      trampoline [X: call Y; ...; Y: jmp f];
    - the {b smart} tracer reads the branch function's {e hash input} (the
      return address on the stack) at entry, which the attack cannot
      change without breaking the program. *)

type kind = Simple | Smart

type extraction = {
  bits : bool list;  (** decoded watermark bits, w_0 first *)
  call_sites : int list;  (** recovered a_0 .. a_k *)
  f_entry : int;  (** identified branch-function entry *)
}

val extract :
  ?fuel:int ->
  ?kind:kind ->
  Nativesim.Binary.t ->
  begin_addr:int ->
  end_addr:int ->
  input:int list ->
  (extraction, string) result
(** [kind] defaults to [Smart].  The run is cut short once [end_addr] is
    reached, so extraction does not require a complete program input. *)

val watermark : extraction -> Bignum.t
(** The decoded bits as an integer (bit 0 = first bit). *)
