lib/nwm/extract.mli: Bignum Nativesim
