lib/nwm/branchfn.mli: Nativesim
