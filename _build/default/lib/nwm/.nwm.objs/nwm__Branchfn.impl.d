lib/nwm/branchfn.ml: Asm Insn Nativesim Phash
