lib/nwm/embed.mli: Bignum Nativesim
