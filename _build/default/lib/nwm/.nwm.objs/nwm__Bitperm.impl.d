lib/nwm/bitperm.ml: Array List
