lib/nwm/embed.ml: Array Asm Bignum Binary Bitperm Branchfn Cfg Hashtbl Insn Layout List Nativesim Phash Printf Profile Stdlib String Util
