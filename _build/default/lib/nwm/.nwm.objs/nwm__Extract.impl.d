lib/nwm/extract.ml: Bignum Bitperm Disasm Insn Layout List Machine Nativesim Option
