lib/nwm/bitperm.mli:
