(** Address-order encoding of watermark bits (§4.2.1-4.2.2).

    Each adjacent pair of branch-function call sites encodes one bit:
    a forward jump ([addr a_i < addr a_{i+1}]) is a 1, a backward jump a 0.
    The watermark region lays out [k+1] call slots; the execution chain
    visits them in a permuted order whose ups and downs spell the bits. *)

val slots : bool list -> int array
(** [slots w] returns the visit order [pi] of length [k+1] ([k = length
    w]): a permutation of [0..k] with [pi.(i+1) > pi.(i)] iff the [i]-th
    bit is set.  Construction: start at the number of zero bits; each 1
    takes the next unused slot above, each 0 the next below. *)

val bits_of_addresses : int list -> bool list
(** Inverse decoding used by extraction: one bit per adjacent address
    pair, [true] when the successor address is larger. *)
