open Nativesim

type kind = Simple | Smart

type extraction = { bits : bool list; call_sites : int list; f_entry : int }

type step = { s_addr : int; s_insn : Insn.t; s_stack_top : int }

exception Window_closed

(* Collect the instruction window between begin and end by single-stepping;
   stop the machine as soon as the window closes. *)
let collect_window ?fuel bin ~begin_addr ~end_addr ~input =
  let started = ref false in
  let log = ref [] in
  let observer st ~addr ~insn =
    if (not !started) && addr = begin_addr then started := true;
    if !started then begin
      if addr = end_addr then raise Window_closed;
      let sp = Machine.reg st Insn.sp in
      let top = if sp >= 0 && sp + 8 <= Layout.memory_size then Machine.read_word st sp else 0 in
      log := { s_addr = addr; s_insn = insn; s_stack_top = top } :: !log
    end
  in
  (try ignore (Machine.run ?fuel ~observer bin ~input) with Window_closed -> ());
  List.rev !log

(* Identify the branch function: simulate the call/return discipline; the
   first return that does not come back to its call site exposes the
   offending frame's callee. *)
let find_branch_function steps =
  let rec go stack pending = function
    | [] -> None
    | step :: rest -> begin
        (* resolve a pending return first *)
        match pending with
        | Some (expected, callee) when step.s_addr <> expected -> Some callee
        | _ -> begin
            let stack, pending =
              match step.s_insn with
              | Insn.Call target -> ((step.s_addr + 5, target) :: stack, None)
              | Insn.Ret -> begin
                  match stack with
                  | frame :: stack' -> (stack', Some frame)
                  | [] -> ([], None)
                end
              | _ -> (stack, None)
            in
            go stack pending rest
          end
      end
  in
  go [] None steps

(* A tracer paired with a disassembler canonicalizes a call target by
   following unconditional-jump chains: rerouting a call through a
   trampoline must not hide the function it lands in. *)
let canonicalize bin addr =
  let rec follow addr hops =
    if hops = 0 then addr
    else begin
      match Disasm.at bin addr with
      | Insn.Jmp t -> follow t (hops - 1)
      | _ | (exception Failure _) -> addr
    end
  in
  follow addr 8

let extract ?fuel ?(kind = Smart) bin ~begin_addr ~end_addr ~input =
  let steps = collect_window ?fuel bin ~begin_addr ~end_addr ~input in
  if steps = [] then Error "empty trace window (begin never reached)"
  else begin
    match Option.map (canonicalize bin) (find_branch_function steps) with
    | None -> Error "no branch function identified in the window"
    | Some f_entry ->
        (* every entry into the branch function yields one call site *)
        let sites = ref [] in
        let prev = ref None in
        List.iter
          (fun step ->
            if step.s_addr = f_entry then begin
              let site =
                match kind with
                | Smart -> step.s_stack_top - 5
                | Simple -> begin
                    match !prev with Some p -> p.s_addr | None -> step.s_addr
                  end
              in
              sites := site :: !sites
            end;
            prev := Some step)
          steps;
        let call_sites = List.rev !sites in
        if List.length call_sites < 2 then Error "fewer than two branch-function calls observed"
        else Ok { bits = Bitperm.bits_of_addresses call_sites; call_sites; f_entry }
  end

let watermark e = Bignum.of_bits e.bits
