open Nativesim

let entry_label = "wm_f"
let d_label = "wm_D"
let t_label = "wm_T"
let u_label = "wm_U"

let d_words = 1 lsl Phash.low_bits
let t_words = 1 lsl Phash.table_bits
let u_words = 2 * (1 lsl Phash.table_bits)

let sp = Insn.sp

let code ~shift ~frame_pad =
  if frame_pad < 0 || frame_pad mod 8 <> 0 then invalid_arg "Branchfn.code: bad frame pad";
  let table_mask = (1 lsl Phash.table_bits) - 1 in
  let low_mask = (1 lsl Phash.low_bits) - 1 in
  (* Stack at wm_f1's work site, growing down:
       [pad][ret-to-f][r7][r6][r5][r4][flags][original return address]
     so the key sits at sp + frame_pad + 48. *)
  let key_off = frame_pad + 48 in
  Asm.[
    (* wm_f: save state, delegate, restore, return (redirected). *)
    L entry_label;
    I Insn.Pushf;
    I (Insn.Push 4);
    I (Insn.Push 5);
    I (Insn.Push 6);
    I (Insn.Push 7);
    Call (Lbl "wm_f1");
    I (Insn.Pop 7);
    I (Insn.Pop 6);
    I (Insn.Pop 5);
    I (Insn.Pop 4);
    I Insn.Popf;
    I Insn.Ret;
    (* wm_f1: the helper that reaches into the stack. *)
    L "wm_f1";
    I (Insn.Alu_imm (Insn.Sub, sp, frame_pad));
    I (Insn.Load (5, sp, key_off));                    (* r5 = key (return address) *)
    (* r6 = (key >> shift) & table_mask *)
    I (Insn.Mov (6, 5));
    I (Insn.Alu_imm (Insn.Shr, 6, shift));
    I (Insn.Alu_imm (Insn.And, 6, table_mask));
    (* r7 = D[key & low_mask] *)
    I (Insn.Mov (7, 5));
    I (Insn.Alu_imm (Insn.And, 7, low_mask));
    I (Insn.Alu_imm (Insn.Shl, 7, 3));
    Mov_lbl (4, Lbl d_label);
    I (Insn.Alu (Insn.Add, 7, 4));
    I (Insn.Load (7, 7, 0));
    I (Insn.Alu (Insn.Xor, 6, 7));                     (* r6 = h(key) *)
    (* redirect: return address ^= T[h] *)
    I (Insn.Mov (7, 6));
    I (Insn.Alu_imm (Insn.Shl, 7, 3));
    Mov_lbl (4, Lbl t_label);
    I (Insn.Alu (Insn.Add, 7, 4));
    I (Insn.Load (7, 7, 0));
    I (Insn.Alu (Insn.Xor, 5, 7));
    I (Insn.Store (sp, key_off, 5));
    (* tamper-proofing update: row = U + h*16 = [cell addr, correction] *)
    I (Insn.Mov (7, 6));
    I (Insn.Alu_imm (Insn.Shl, 7, 4));
    Mov_lbl (4, Lbl u_label);
    I (Insn.Alu (Insn.Add, 7, 4));
    I (Insn.Load (5, 7, 0));
    I (Insn.Cmp_imm (5, 0));
    Jcc (Insn.Eq, Lbl "wm_cleanup");
    I (Insn.Load (6, 7, 8));
    I (Insn.Load (4, 5, 0));
    I (Insn.Alu (Insn.Xor, 4, 6));
    I (Insn.Store (5, 0, 4));
    (* one-shot: clear the row, as in Figure 7's `movl $0x0,0x4(%eax)` *)
    I (Insn.Mov_imm (4, 0));
    I (Insn.Store (7, 0, 4));
    I (Insn.Store (7, 8, 4));
    L "wm_cleanup";
    I (Insn.Alu_imm (Insn.Add, sp, frame_pad));
    I Insn.Ret;
  ]
