let slots w =
  let zeros = List.length (List.filter not w) in
  let k = List.length w in
  let pi = Array.make (k + 1) 0 in
  pi.(0) <- zeros;
  let high = ref (zeros + 1) and low = ref (zeros - 1) in
  List.iteri
    (fun i bit ->
      if bit then begin
        pi.(i + 1) <- !high;
        incr high
      end
      else begin
        pi.(i + 1) <- !low;
        decr low
      end)
    w;
  pi

let bits_of_addresses addrs =
  let rec go = function
    | a :: (b :: _ as rest) -> (b > a) :: go rest
    | [ _ ] | [] -> []
  in
  go addrs
