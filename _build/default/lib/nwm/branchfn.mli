(** Branch-function code synthesis (§4.1, Figure 7).

    The branch function is called in the normal manner but overwrites its
    return address: it saves flags and scratch registers, delegates to a
    helper (so the return-address arithmetic happens one frame deeper, as
    the paper's helper-function chain does), hashes the return address with
    the perfect hash, xors in the redirect-table entry, applies at most one
    pending tamper-proofing update ([M-cell ^= correction], one-shot), and
    returns — to somewhere else. *)

val code : shift:int -> frame_pad:int -> Nativesim.Asm.item list
(** The assembly of [wm_f] (entry) and [wm_f1] (helper).  References the
    labels [wm_D] (displacement table), [wm_T] (redirect table), [wm_U]
    (tamper-update rows).  [shift] is the perfect hash's shift; [frame_pad]
    is the helper's dummy frame size in bytes (a multiple of 8, randomized
    per embedding). *)

val entry_label : string
(** "wm_f". *)

val d_label : string
val t_label : string
val u_label : string

val d_words : int
(** Number of words in the displacement table ([2^Phash.low_bits]). *)

val t_words : int
val u_words : int
(** The update table has [2^Phash.table_bits] rows of 2 words. *)
