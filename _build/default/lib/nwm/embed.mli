(** Native watermark embedding (§4.2.2) with tamper-proofing (§4.3).

    The embedder takes the program at the assembly level (our rewriter-
    level IR), splits the entry edge, and inserts a watermark region of
    [k+1] branch-function call slots whose execution chain visits them in
    an order that spells the watermark bits by address comparison.  Up to
    [k] cold unconditional jumps of the original program are converted to
    indirect jumps through memory cells that only the branch function's
    chained updates make correct — snip or bypass the branch function and
    the program breaks.

    Linking is two-phase: a first assembly with placeholder table contents
    fixes every address; the perfect hash and the xor tables are computed
    from those addresses; a second assembly with identical layout fills
    them in. *)

type placement =
  | Region  (** a dedicated slot region between [begin] and [end], as in Figure 6(c) *)
  | Scattered
      (** the §4.2.2 construction: the [k+1] calls are inserted at points
          scattered through the original text whose preceding instruction
          is an unconditional jump, chosen in address order so the visit
          permutation spells the bits.  Needs at least [k+1] such points. *)

type report = {
  binary : Nativesim.Binary.t;
  begin_addr : int;  (** start of the watermark region *)
  end_addr : int;  (** where the chain re-enters the original program *)
  f_entry : int;  (** branch-function entry (for tests/attacks) *)
  bits : int;  (** watermark width k *)
  call_slots : int list;  (** slot addresses in chain order, a_0..a_k *)
  tamper_cells : int;  (** number of tamper-proofed jumps *)
  bytes_before : int;
  bytes_after : int;
}

val embed :
  ?seed:int64 ->
  ?tamper_proof:bool ->
  ?placement:placement ->
  ?obfuscate_jumps:int ->
  ?fuel:int ->
  watermark:Bignum.t ->
  bits:int ->
  training_input:int list ->
  Nativesim.Asm.program ->
  report
(** [training_input] drives the profiling run that classifies jumps as
    cold (§5.2: SPEC training inputs).  [obfuscate_jumps] (default 0)
    additionally routes up to that many ordinary unconditional jumps
    through the branch function (§4.2.1: the branch function "can also be
    used to obfuscate other control transfers ... that have nothing to do
    with the watermark itself"), so watermark calls hide among decoys.
    Labels starting with ["wm_"] are reserved for the watermarker.  Raises
    [Invalid_argument] when the watermark does not fit in [bits]. *)
