(** Arbitrary-precision signed integers.

    The watermark value [W] can be up to 768 bits (Figure 5 of the paper),
    and recombining it with the Generalized Chinese Remainder Theorem needs
    exact arithmetic on products of many moduli.  zarith is not available in
    this environment, so this is a small self-contained implementation:
    little-endian arrays of 30-bit limbs, schoolbook multiplication, binary
    long division.  All values this project manipulates are at most a few
    thousand bits, so asymptotic efficiency is irrelevant; correctness and
    clarity win. *)

type t
(** An immutable signed integer of arbitrary magnitude. *)

val zero : t
val one : t
val two : t

val of_int : int -> t

val to_int : t -> int
(** Raises [Failure] if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|], and [r] carrying the sign of [a]. Raises [Division_by_zero]
    if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** [erem a b] is the euclidean (always nonnegative) remainder of [a]
    modulo [|b|]. *)

val gcd : t -> t -> t
(** Greatest common divisor; always nonnegative. *)

val egcd : t -> t -> t * t * t
(** [egcd a b] is [(g, s, u)] with [g = gcd a b] and [s*a + u*b = g]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val test_bit : t -> int -> bool
(** Bit [i] of the magnitude. *)

val of_bits : bool list -> t
(** Least-significant bit first. *)

val to_bits : t -> width:int -> bool list
(** The low [width] magnitude bits, least-significant first. *)

val random_bits : Util.Prng.t -> int -> t
(** [random_bits rng n] is a uniform [n]-bit nonnegative value (the top bit
    is not forced, so the result is uniform on [\[0, 2^n)]). *)

val of_string : string -> t
(** Decimal, with optional leading ['-']. Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val to_float : t -> float

val pp : Format.formatter -> t -> unit
