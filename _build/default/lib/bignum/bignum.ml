(* Little-endian arrays of 30-bit limbs. [sign] is -1, 0 or 1 and is 0 exactly
   when [mag] is empty; [mag] never has leading (most-significant) zero
   limbs. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers ---- *)

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r

(* Requires [cmp_mag a b >= 0]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj <= (2^30-1)^2 < 2^60; adding r and carry stays below 2^62. *)
        let acc = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- acc land limb_mask;
        carry := acc lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

let num_bits_mag mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * limb_bits) + width 1
  end

let test_bit_mag mag i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length mag && (mag.(limb) lsr off) land 1 = 1

(* Single-limb division: divides [a] by [d] (0 < d < base). *)
let divmod_small_mag a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize_mag q, !r)

(* Binary long division for multi-limb divisors. *)
let divmod_mag a b =
  let lb = Array.length b in
  assert (lb > 0);
  if cmp_mag a b < 0 then ([||], Array.copy a)
  else if lb = 1 then begin
    let q, r = divmod_small_mag a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let bits = num_bits_mag a in
    let q = Array.make (Array.length a) 0 in
    (* Remainder buffer with one spare limb for the shift; since the loop
       subtracts [b] whenever [r >= b], [r] stays below [2*b] and never
       overflows the buffer. *)
    let r = Array.make (Array.length b + 2) 0 in
    let shift_in_bit bit =
      (* r := r*2 + bit *)
      let carry = ref bit in
      for i = 0 to Array.length r - 1 do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      assert (!carry = 0)
    in
    let r_ge_b () =
      (* compare r (length rlen+1 limbs, maybe with zeros) against b *)
      let top = ref (Array.length r - 1) in
      while !top > 0 && r.(!top) = 0 do
        decr top
      done;
      let lr = !top + 1 in
      if lr <> lb then lr > lb
      else begin
        let rec go i =
          if i < 0 then true else if r.(i) <> b.(i) then r.(i) > b.(i) else go (i - 1)
        in
        go (lr - 1)
      end
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to Array.length r - 1 do
        let d = r.(i) - (if i < lb then b.(i) else 0) - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      assert (!borrow = 0)
    in
    for i = bits - 1 downto 0 do
      shift_in_bit (if test_bit_mag a i then 1 else 0);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize_mag q, normalize_mag r)
  end

(* ---- signed operations ---- *)

let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    let n = abs n in
    let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
    make sign (Array.of_list (limbs n))
  end

let num_bits t = num_bits_mag t.mag

let to_int_opt t =
  if num_bits t > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bignum.to_int: value does not fit"

let sign t = t.sign
let is_zero t = t.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let neg t = if t.sign = 0 then zero else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = divmod_mag a.mag b.mag in
  let q = make (a.sign * b.sign) qm in
  let r = make a.sign rm in
  (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let rec gcd_mag a b = if b.sign = 0 then a else gcd_mag b (rem a b)
let gcd a b = gcd_mag (abs a) (abs b)

let egcd a b =
  (* Iterative extended Euclid on (a, b); returns (g, s, u), s*a + u*b = g. *)
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (r0, s0, t0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 r2 s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  let g, s, u = go a b one zero zero one in
  if g.sign < 0 then (neg g, neg s, neg u) else (g, s, u)

let lcm a b =
  if is_zero a || is_zero b then zero
  else begin
    let g = gcd a b in
    abs (mul (div a g) b)
  end

let pow b e =
  if e < 0 then invalid_arg "Bignum.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let test_bit t i = test_bit_mag t.mag i

let shift_left t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let bits = num_bits t + k in
    let mag = Array.make ((bits + limb_bits - 1) / limb_bits) 0 in
    for i = 0 to num_bits t - 1 do
      if test_bit t i then begin
        let j = i + k in
        mag.(j / limb_bits) <- mag.(j / limb_bits) lor (1 lsl (j mod limb_bits))
      end
    done;
    make t.sign mag
  end

let shift_right t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let bits = num_bits t - k in
    if bits <= 0 then zero
    else begin
      let mag = Array.make ((bits + limb_bits - 1) / limb_bits) 0 in
      for j = 0 to bits - 1 do
        if test_bit t (j + k) then mag.(j / limb_bits) <- mag.(j / limb_bits) lor (1 lsl (j mod limb_bits))
      done;
      make t.sign mag
    end
  end

let of_bits bits =
  let n = List.length bits in
  let mag = Array.make ((n + limb_bits - 1) / limb_bits) 0 in
  List.iteri
    (fun i b -> if b then mag.(i / limb_bits) <- mag.(i / limb_bits) lor (1 lsl (i mod limb_bits)))
    bits;
  make 1 mag

let to_bits t ~width = List.init width (fun i -> test_bit t i)

let random_bits rng n =
  let bits = List.init n (fun _ -> Util.Prng.bool rng) in
  of_bits bits

let ten = of_int 10

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag =
      if Array.length mag = 0 then ()
      else begin
        let q, r = divmod_small_mag mag 10 in
        Buffer.add_char buf (Char.chr (Char.code '0' + r));
        go q
      end
    in
    go t.mag;
    let digits = Buffer.contents buf in
    let n = String.length digits in
    let rev = String.init n (fun i -> digits.[n - 1 - i]) in
    if t.sign < 0 then "-" ^ rev else rev
  end

let of_string s =
  if String.length s = 0 then invalid_arg "Bignum.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative then 1 else 0 in
  if start >= String.length s then invalid_arg "Bignum.of_string: no digits";
  let v = ref zero in
  for i = start to String.length s - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bignum.of_string: bad digit";
    v := add (mul !v ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !v else !v

let to_float t =
  let v = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !v

let pp fmt t = Format.pp_print_string fmt (to_string t)
