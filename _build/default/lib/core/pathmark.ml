module Util = Util
module Bignum = Bignum
module Numtheory = Numtheory
module Crypto = Crypto
module Codec = Codec
module Stackvm = Stackvm
module Minic = Minic
module Jwm = Jwm
module Vmattacks = Vmattacks
module Nativesim = Nativesim
module Phash = Phash
module Nwm = Nwm
module Nattacks = Nattacks
module Workloads = Workloads

let watermark_vm ?seed ~key ~watermark ~bits ~pieces ~input prog =
  let spec =
    { Jwm.Embed.passphrase = key; watermark; watermark_bits = bits; pieces; input }
  in
  (Jwm.Embed.embed ?seed spec prog).Jwm.Embed.program

let recognize_vm ?fuel ~key ~bits ~input prog =
  (Jwm.Recognize.recognize ?fuel ~passphrase:key ~watermark_bits:bits ~input prog).Jwm.Recognize.value

let watermark_native ?seed ?tamper_proof ~watermark ~bits ~training_input prog =
  Nwm.Embed.embed ?seed ?tamper_proof ~watermark ~bits ~training_input prog

let extract_native ?kind bin ~begin_addr ~end_addr ~input =
  match Nwm.Extract.extract ?kind bin ~begin_addr ~end_addr ~input with
  | Ok ex -> Some (Nwm.Extract.watermark ex)
  | Error _ -> None
