let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (logsum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let median = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let spec_average xs =
  if List.length xs < 3 then mean xs
  else begin
    let a = Array.of_list xs in
    Array.sort compare a;
    let middle = Array.to_list (Array.sub a 1 (Array.length a - 2)) in
    mean middle
  end

let percent ~before ~after = (after -. before) /. before *. 100.0
