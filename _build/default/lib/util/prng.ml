type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  (* Re-mix with a distinct constant so that [split] streams do not collide
     with direct outputs of the parent. *)
  { state = mix (Int64.logxor seed 0xD6E8FEB86659FD93L) }

let bits t n =
  assert (n >= 0 && n <= 62);
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - n)) land ((1 lsl n) - 1)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. r /. 9007199254740992.0 (* 2^53 *)

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Prng.weighted_index: no positive weight";
  let target = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.0
