type t = {
  mutable data : Bytes.t; (* bit i lives in byte i/8, bit position i mod 8 *)
  mutable len : int;
}

let create () = { data = Bytes.make 16 '\000'; len = 0 }

let length t = t.len

let ensure_capacity t n =
  let cap = Bytes.length t.data * 8 in
  if n > cap then begin
    let cap' = max n (cap * 2) in
    let data' = Bytes.make ((cap' + 7) / 8) '\000' in
    Bytes.blit t.data 0 data' 0 (Bytes.length t.data);
    t.data <- data'
  end

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitstring.get: index out of range";
  unsafe_get t i

let append t b =
  ensure_capacity t (t.len + 1);
  let i = t.len in
  if b then begin
    let byte = Char.code (Bytes.get t.data (i lsr 3)) in
    Bytes.set t.data (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))
  end;
  t.len <- t.len + 1

let append_int t ~value ~width =
  if width < 0 || width > 62 then invalid_arg "Bitstring.append_int: width";
  for k = 0 to width - 1 do
    append t ((value lsr k) land 1 = 1)
  done

let of_string s =
  let t = create () in
  String.iter
    (function
      | '0' -> append t false
      | '1' -> append t true
      | c -> invalid_arg (Printf.sprintf "Bitstring.of_string: bad char %C" c))
    s;
  t

let to_string t = String.init t.len (fun i -> if unsafe_get t i then '1' else '0')

let of_bool_list bs =
  let t = create () in
  List.iter (append t) bs;
  t

let to_bool_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (unsafe_get t i :: acc) in
  go (t.len - 1) []

let equal a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

let concat a b =
  let t = create () in
  for i = 0 to a.len - 1 do
    append t (unsafe_get a i)
  done;
  for i = 0 to b.len - 1 do
    append t (unsafe_get b i)
  done;
  t

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitstring.sub";
  let r = create () in
  for i = pos to pos + len - 1 do
    append r (unsafe_get t i)
  done;
  r

let window t ~pos ~stride ~width =
  if stride < 1 then invalid_arg "Bitstring.window: stride";
  if width < 0 || width > 62 then invalid_arg "Bitstring.window: width";
  if pos < 0 || (width > 0 && pos + ((width - 1) * stride) >= t.len) then None
  else begin
    let v = ref 0 in
    for k = width - 1 downto 0 do
      v := (!v lsl 1) lor (if unsafe_get t (pos + (k * stride)) then 1 else 0)
    done;
    Some !v
  end

let is_substring ~needle ~haystack =
  let n = needle.len and h = haystack.len in
  if n = 0 then true
  else if n > h then false
  else begin
    let matches pos =
      let rec go i = i >= n || (unsafe_get haystack (pos + i) = unsafe_get needle i && go (i + 1)) in
      go 0
    in
    let rec scan pos = pos + n <= h && (matches pos || scan (pos + 1)) in
    scan 0
  end

let find_int t ~width ~value ~stride =
  let rec go pos =
    match window t ~pos ~stride ~width with
    | None -> None
    | Some v -> if v = value then Some pos else go (pos + 1)
  in
  go 0

let pp fmt t = Format.pp_print_string fmt (to_string t)
