lib/util/bitstring.ml: Bytes Char Format List Printf String
