lib/util/prng.mli:
