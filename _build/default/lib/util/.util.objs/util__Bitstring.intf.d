lib/util/bitstring.mli: Format
