lib/util/stats.mli:
