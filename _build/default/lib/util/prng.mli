(** Deterministic pseudo-random number generation.

    All randomized components of the watermarker (piece placement, opaque
    predicate choice, attack sampling, ...) draw from this splittable
    SplitMix64 generator so that every experiment is reproducible from a
    seed.  The global [Random] state of the OCaml runtime is never used. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    evolve independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bits : t -> int -> int
(** [bits t n] returns [n] uniform random bits as a nonnegative int,
    [0 <= n <= 62]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] samples index [i] with probability proportional to
    [w.(i)]. All weights must be nonnegative and at least one positive. *)
