(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val median : float list -> float
(** Median; 0 for the empty list. *)

val spec_average : float list -> float
(** The SPEC-style reporting rule used in Section 5.2 of the paper: run the
    measurements, discard the highest and the lowest, and average the rest.
    Lists shorter than 3 fall back to the plain mean. *)

val percent : before:float -> after:float -> float
(** [percent ~before ~after] is the relative change in percent,
    [(after - before) / before * 100]. *)
