(** Growable bit-strings.

    The dynamic trace of a program is decoded into a bit-string (one bit per
    executed conditional branch, Section 3.1 of the paper); the recognizer
    then slides fixed-width windows over it.  This module provides the bit
    container shared by the tracer, the embedder and the recognizer. *)

type t
(** A mutable sequence of bits, indexed from 0. *)

val create : unit -> t
(** An empty bit-string. *)

val length : t -> int

val get : t -> int -> bool
(** [get t i] is bit [i]. Raises [Invalid_argument] if out of range. *)

val append : t -> bool -> unit
(** Append a single bit. *)

val append_int : t -> value:int -> width:int -> unit
(** [append_int t ~value ~width] appends the [width] low bits of [value],
    least-significant bit first. [0 <= width <= 62]. *)

val of_string : string -> t
(** [of_string "0110"] builds the bit-string 0,1,1,0 (index order). Raises
    [Invalid_argument] on characters other than ['0'] and ['1']. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

val of_bool_list : bool list -> t
val to_bool_list : t -> bool list

val equal : t -> t -> bool

val concat : t -> t -> t
(** [concat a b] is a fresh bit-string holding [a]'s bits then [b]'s. *)

val sub : t -> pos:int -> len:int -> t
(** [sub t ~pos ~len] copies bits [pos .. pos+len-1]. *)

val window : t -> pos:int -> stride:int -> width:int -> int option
(** [window t ~pos ~stride ~width] reads bits [pos], [pos+stride], ...
    ([width] of them, least-significant first) and packs them into an int.
    Returns [None] when the window runs past the end. [width <= 62],
    [stride >= 1]. *)

val is_substring : needle:t -> haystack:t -> bool
(** [is_substring ~needle ~haystack] tests whether [needle] occurs
    contiguously in [haystack]. *)

val find_int : t -> width:int -> value:int -> stride:int -> int option
(** [find_int t ~width ~value ~stride] returns the first position [p] such
    that [window t ~pos:p ~stride ~width = Some value], if any. *)

val pp : Format.formatter -> t -> unit
