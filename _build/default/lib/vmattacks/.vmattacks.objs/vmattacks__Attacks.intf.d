lib/vmattacks/attacks.mli: Stackvm Util
