lib/vmattacks/attacks.ml: Array Char Instr Interp List Program Rewrite Serialize Stackvm Stdlib String Trace Util
