(** The CaffeineMark analog (§5.1): a small suite of microbenchmarks —
    sieve, loop, logic, method and array kernels — where almost every
    instruction is executed frequently.  Watermark pieces inserted here
    land in hot code quickly, which is what drives the slowdown curve of
    Figure 8(a). *)

val suite : Workload.t
(** All five kernels in one program, like the CaffeineMark harness. *)

val kernels : Workload.t list
(** The kernels as separate workloads (sieve, loop, logic, method,
    array). *)
