let source =
  {|
  // miniinterp: a stack-machine interpreter interpreted by the host VM.
  // opcodes: 0 push k | 1 add | 2 sub | 3 mul | 4 dup | 5 swap | 6 jmp t
  //          7 jz t | 8 print | 9 halt | 10 load g | 11 store g | 12 lt
  //          13 drop

  global int code_op[256];
  global int code_arg[256];
  global int n_code;
  global int mem[32];

  func emit(int op, int arg) {
    code_op[n_code] = op;
    code_arg[n_code] = arg;
    n_code = n_code + 1;
    return n_code - 1;
  }

  // guest program 1: sum 1..n (n in mem[0]) then print
  func assemble_sum() {
    n_code = 0;
    emit(0, 0);      //  0: push 0        acc
    emit(11, 1);     //  1: mem[1] = acc
    emit(0, 1);      //  2: push 1        i
    emit(11, 2);     //  3: mem[2] = i
    // loop:
    emit(10, 2);     //  4: push i
    emit(10, 0);     //  5: push n
    emit(12, 0);     //  6: i < n+1? -> actually: lt
    emit(7, 17);     //  7: jz end
    emit(10, 1);     //  8: push acc
    emit(10, 2);     //  9: push i
    emit(1, 0);      // 10: add
    emit(11, 1);     // 11: acc = ...
    emit(10, 2);     // 12: push i
    emit(0, 1);      // 13: push 1
    emit(1, 0);      // 14: add
    emit(11, 2);     // 15: i = i + 1
    emit(6, 4);      // 16: jmp loop
    emit(10, 1);     // 17: push acc
    emit(8, 0);      // 18: print
    emit(9, 0);      // 19: halt
    return n_code;
  }

  // guest program 2: iterative fibonacci of mem[0]
  func assemble_fib() {
    n_code = 0;
    emit(0, 0);  emit(11, 1);   // a = 0
    emit(0, 1);  emit(11, 2);   // b = 1
    emit(0, 0);  emit(11, 3);   // k = 0
    // loop (pc 6):
    emit(10, 3); emit(10, 0); emit(12, 0);  // k < n ?
    emit(7, 23);                            // jz end
    emit(10, 2); emit(11, 4);               // t = b
    emit(10, 1); emit(10, 2); emit(1, 0); emit(11, 2); // b = a + b
    emit(10, 4); emit(11, 1);               // a = t
    emit(10, 3); emit(0, 1); emit(1, 0); emit(11, 3);  // k = k + 1
    emit(6, 6);                             // jmp loop
    emit(10, 1); emit(8, 0); emit(9, 0);    // print a; halt
    return n_code;
  }

  func run(int fuel) {
    int stack[64];
    int sp = 0;
    int pc = 0;
    int executed = 0;
    while (executed < fuel) {
      int op = code_op[pc];
      int arg = code_arg[pc];
      executed = executed + 1;
      if (op == 0) { stack[sp] = arg; sp = sp + 1; pc = pc + 1; }
      else { if (op == 1) { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; pc = pc + 1; }
      else { if (op == 2) { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; pc = pc + 1; }
      else { if (op == 3) { stack[sp - 2] = stack[sp - 2] * stack[sp - 1]; sp = sp - 1; pc = pc + 1; }
      else { if (op == 4) { stack[sp] = stack[sp - 1]; sp = sp + 1; pc = pc + 1; }
      else { if (op == 5) { int t = stack[sp - 1]; stack[sp - 1] = stack[sp - 2]; stack[sp - 2] = t; pc = pc + 1; }
      else { if (op == 6) { pc = arg; }
      else { if (op == 7) { sp = sp - 1; if (stack[sp] == 0) { pc = arg; } else { pc = pc + 1; } }
      else { if (op == 8) { sp = sp - 1; print(stack[sp]); pc = pc + 1; }
      else { if (op == 9) { return executed; }
      else { if (op == 10) { stack[sp] = mem[arg]; sp = sp + 1; pc = pc + 1; }
      else { if (op == 11) { sp = sp - 1; mem[arg] = stack[sp]; pc = pc + 1; }
      else { if (op == 12) { if (stack[sp - 2] < stack[sp - 1]) { stack[sp - 2] = 1; } else { stack[sp - 2] = 0; } sp = sp - 1; pc = pc + 1; }
      else { if (op == 13) { sp = sp - 1; pc = pc + 1; }
      else { return 0 - 1; } } } } } } } } } } } } } }
    }
    return executed;
  }

  func main() {
    int which = read();
    int n = read();
    mem[0] = n;
    if (which == 0) { assemble_sum(); } else { assemble_fib(); }
    int executed = run(100000);
    print(executed);
    return 0;
  }
|}

let interpreter =
  Workload.make ~name:"miniinterp" ~description:"a stack-machine interpreter running guest bytecode"
    ~input:[ 0; 60 ]
    ~alt_inputs:[ [ 1; 20 ]; [ 0; 5 ]; [ 1; 1 ] ]
    source
