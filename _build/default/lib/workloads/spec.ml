(* Each source is deliberately written in a different style so the suite
   exercises varied code shapes (loop nests, recursion, tables, pointer-ish
   array chasing), like the real SPEC programs do. *)

let bzip2 =
  {|
  // bzip2 analog: run-length encoding + move-to-front + checksum
  global int data[2048];
  global int mtf[256];
  func generate(int n, int seed) {
    int x = seed;
    int i = 0;
    while (i < n) {
      x = (x * 1103515245 + 12345) & 1073741823;
      int v = (x >> 8) & 15;
      // runs: repeat the value a few times
      int run = (x & 3) + 1;
      int j = 0;
      while (j < run && i < n) { data[i] = v; i = i + 1; j = j + 1; }
    }
    return n;
  }
  func rle_encode(int n) {
    int out = 0;
    int i = 0;
    while (i < n) {
      int v = data[i];
      int run = 0;
      while (i < n && data[i] == v) { run = run + 1; i = i + 1; }
      out = (out * 31 + v * 7 + run) & 1073741823;
    }
    return out;
  }
  func mtf_encode(int n) {
    int k = 0;
    while (k < 256) { mtf[k] = k; k = k + 1; }
    int acc = 0;
    int i = 0;
    while (i < n) {
      int v = data[i];
      int pos = 0;
      while (mtf[pos] != v) { pos = pos + 1; }
      acc = (acc + pos * i) & 1073741823;
      // move to front
      int j = pos;
      while (j > 0) { mtf[j] = mtf[j - 1]; j = j - 1; }
      mtf[0] = v;
      i = i + 1;
    }
    return acc;
  }
  func main() {
    int n = read();
    int seed = read();
    generate(n, seed);
    print(rle_encode(n));
    print(mtf_encode(n));
    return 0;
  }
|}

let crafty =
  {|
  // crafty analog: negamax game search with alpha-beta on a nim-like game
  global int nodes;
  func evaluate(int pile, int turn) {
    if (pile % 4 == 0) { return -10 + turn; }
    return 10 - turn;
  }
  func negamax(int pile, int depth, int alpha, int beta) {
    nodes = nodes + 1;
    if (pile == 0) { return -100; }
    if (depth == 0) { return evaluate(pile, depth); }
    int best = -1000;
    int move = 1;
    while (move <= 3) {
      if (move <= pile) {
        int score = -negamax(pile - move, depth - 1, -beta, -alpha);
        if (score > best) { best = score; }
        if (best > alpha) { alpha = best; }
        if (alpha >= beta) { break; }
      }
      move = move + 1;
    }
    return best;
  }
  func main() {
    int pile = read();
    int depth = read();
    print(negamax(pile, depth, -1000, 1000));
    print(nodes);
    return 0;
  }
|}

let gap =
  {|
  // gap analog: multi-digit (base 10000) arithmetic — factorials and sums
  global int acc[400];
  global int tmp[400];
  func big_set(int v) {
    int i = 0;
    while (i < 400) { acc[i] = 0; i = i + 1; }
    acc[0] = v;
    return 0;
  }
  func big_mul_small(int m) {
    int carry = 0;
    int i = 0;
    while (i < 400) {
      int cur = acc[i] * m + carry;
      acc[i] = cur % 10000;
      carry = cur / 10000;
      i = i + 1;
    }
    return carry;
  }
  func big_digits() {
    int top = 399;
    while (top > 0 && acc[top] == 0) { top = top - 1; }
    return top + 1;
  }
  func big_digit_sum() {
    int total = 0;
    int i = 0;
    while (i < 400) {
      int v = acc[i];
      while (v > 0) { total = total + v % 10; v = v / 10; }
      i = i + 1;
    }
    return total;
  }
  func main() {
    int n = read();
    big_set(1);
    int k = 2;
    while (k <= n) { big_mul_small(k); k = k + 1; }
    print(big_digits());
    print(big_digit_sum());
    return 0;
  }
|}

let gcc =
  {|
  // gcc analog: compile postfix expressions into a register machine with
  // constant folding, then "execute" the emitted code
  global int code_op[4096];   // 0 loadconst, 1 add, 2 sub, 3 mul
  global int code_arg[4096];
  global int n_code;
  global int stack_const[64]; // compile-time constant stack (-1 = dynamic)
  global int sp_;
  func emit(int op, int arg) {
    if (n_code >= 4096) { return n_code; }
    code_op[n_code] = op;
    code_arg[n_code] = arg;
    n_code = n_code + 1;
    return n_code;
  }
  func compile_token(int tok) {
    // tok >= 0: constant; -1 add; -2 sub; -3 mul
    if (tok >= 0) {
      stack_const[sp_] = tok;
      sp_ = sp_ + 1;
      return 0;
    }
    int b = stack_const[sp_ - 1];
    int a = stack_const[sp_ - 2];
    sp_ = sp_ - 1;
    if (a >= 0 && b >= 0) {
      // constant folding
      int v = 0;
      if (tok == -1) { v = a + b; }
      if (tok == -2) { v = a - b; }
      if (tok == -3) { v = a * b; }
      stack_const[sp_ - 1] = v & 65535;
      return 1;
    }
    // dynamic: emit pushes for any constants still pending, then the op
    if (a >= 0) { emit(0, a); }
    if (b >= 0) { emit(0, b); }
    emit(-tok, 0);
    stack_const[sp_ - 1] = -1;
    return 2;
  }
  func flush() {
    if (sp_ > 0 && stack_const[sp_ - 1] >= 0) { emit(0, stack_const[sp_ - 1]); }
    return 0;
  }
  func execute() {
    int st[4100];
    int depth = 0;
    int pc = 0;
    int acc = 0;
    while (pc < n_code) {
      int op = code_op[pc];
      if (op == 0) { st[depth] = code_arg[pc]; depth = depth + 1; }
      if (op == 1) { st[depth - 2] = st[depth - 2] + st[depth - 1]; depth = depth - 1; }
      if (op == 2) { st[depth - 2] = st[depth - 2] - st[depth - 1]; depth = depth - 1; }
      if (op == 3) { st[depth - 2] = (st[depth - 2] * st[depth - 1]) & 65535; depth = depth - 1; }
      acc = (acc * 17 + op) & 1073741823;
      pc = pc + 1;
    }
    if (depth > 0) { acc = acc + st[depth - 1]; }
    return acc;
  }
  func main() {
    int exprs = read();
    int seed = read();
    int x = seed;
    int folded = 0;
    int e = 0;
    while (e < exprs) {
      sp_ = 0;
      // build "(c1 c2 op) c3 op" style expressions pseudo-randomly
      int t = 0;
      while (t < 5) {
        x = (x * 1103515245 + 12345) & 1073741823;
        if (t < 2 || (x & 3) != 0 || sp_ < 2) {
          folded = folded + compile_token((x >> 5) & 255);
        } else {
          folded = folded + compile_token(0 - ((x & 1) + 1));
        }
        t = t + 1;
      }
      // reduce whatever is on the stack with adds
      while (sp_ > 1) { folded = folded + compile_token(-1); }
      flush();
      sp_ = 0;
      e = e + 1;
    }
    print(n_code);
    print(folded);
    print(execute());
    return 0;
  }
|}

let gzip =
  {|
  // gzip analog: LZ77 window matching over generated data
  global int data[4096];
  func generate(int n, int seed) {
    int x = seed;
    int i = 0;
    while (i < n) {
      x = (x * 1103515245 + 12345) & 1073741823;
      data[i] = (x >> 7) & 7;
      i = i + 1;
    }
    // plant some repeats so matches exist
    i = 64;
    while (i + 16 < n) {
      int j = 0;
      while (j < 12) { data[i + j] = data[i + j - 64]; j = j + 1; }
      i = i + 96;
    }
    return n;
  }
  func longest_match(int pos, int window, int n) {
    int best_len = 0;
    int best_dist = 0;
    int start = pos - window;
    if (start < 0) { start = 0; }
    int cand = start;
    while (cand < pos) {
      int length = 0;
      while (pos + length < n && data[cand + length] == data[pos + length] && length < 32) {
        length = length + 1;
      }
      if (length > best_len) { best_len = length; best_dist = pos - cand; }
      cand = cand + 1;
    }
    return best_len * 4096 + best_dist;
  }
  func main() {
    int n = read();
    int seed = read();
    generate(n, seed);
    int pos = 0;
    int literals = 0;
    int matches = 0;
    int acc = 0;
    while (pos < n) {
      int m = longest_match(pos, 64, n);
      int length = m / 4096;
      if (length >= 3) {
        matches = matches + 1;
        acc = (acc * 31 + m) & 1073741823;
        pos = pos + length;
      } else {
        literals = literals + 1;
        acc = (acc * 31 + data[pos]) & 1073741823;
        pos = pos + 1;
      }
    }
    print(literals);
    print(matches);
    print(acc);
    return 0;
  }
|}

let mcf =
  {|
  // mcf analog: Bellman-Ford relaxation on a generated sparse graph
  global int edge_from[3000];
  global int edge_to[3000];
  global int edge_cost[3000];
  global int dist[300];
  func main() {
    int nodes = read();
    int seed = read();
    int edges = nodes * 4;
    int x = seed;
    int e = 0;
    while (e < edges) {
      x = (x * 1103515245 + 12345) & 1073741823;
      edge_from[e] = x % nodes;
      x = (x * 1103515245 + 12345) & 1073741823;
      edge_to[e] = x % nodes;
      x = (x * 1103515245 + 12345) & 1073741823;
      edge_cost[e] = 1 + (x % 50);
      e = e + 1;
    }
    int i = 0;
    while (i < nodes) { dist[i] = 1000000; i = i + 1; }
    dist[0] = 0;
    int round = 0;
    int changed = 1;
    while (round < nodes && changed == 1) {
      changed = 0;
      e = 0;
      while (e < edges) {
        int nd = dist[edge_from[e]] + edge_cost[e];
        if (nd < dist[edge_to[e]]) { dist[edge_to[e]] = nd; changed = 1; }
        e = e + 1;
      }
      round = round + 1;
    }
    int reachable = 0;
    int acc = 0;
    i = 0;
    while (i < nodes) {
      if (dist[i] < 1000000) { reachable = reachable + 1; acc = (acc + dist[i]) & 1073741823; }
      i = i + 1;
    }
    print(round);
    print(reachable);
    print(acc);
    return 0;
  }
|}

let parser =
  {|
  // parser analog: table-driven validation of generated token streams
  // against a small bracket/word grammar, with an explicit stack
  global int tokens[2048];
  global int stk[256];
  func generate(int n, int seed) {
    int x = seed;
    int depth = 0;
    int i = 0;
    while (i < n) {
      x = (x * 1103515245 + 12345) & 1073741823;
      int choice = x % 10;
      if (choice < 3 && depth < 200) { tokens[i] = 1; depth = depth + 1; }      // open
      else { if (choice < 6 && depth > 0) { tokens[i] = 2; depth = depth - 1; } // close
      else { tokens[i] = 3 + (x % 4); } }                                        // words
      i = i + 1;
    }
    while (depth > 0 && i < 2048) { tokens[i] = 2; depth = depth - 1; i = i + 1; }
    return i;
  }
  func classify(int tok) {
    if (tok == 1) { return 1; }
    if (tok == 2) { return 2; }
    if (tok >= 3 && tok <= 6) { return 3; }
    return 0;
  }
  func validate(int n) {
    int depth = 0;
    int words = 0;
    int maxdepth = 0;
    int i = 0;
    while (i < n) {
      int k = classify(tokens[i]);
      if (k == 1) {
        stk[depth] = i;
        depth = depth + 1;
        if (depth > maxdepth) { maxdepth = depth; }
      }
      if (k == 2) {
        if (depth == 0) { return -1; }
        depth = depth - 1;
      }
      if (k == 3) { words = words + 1; }
      if (k == 0) { return -2; }
      i = i + 1;
    }
    if (depth != 0) { return -3; }
    return words * 1000 + maxdepth;
  }
  func main() {
    int n = read();
    int seed = read();
    int produced = generate(n, seed);
    print(produced);
    print(validate(produced));
    return 0;
  }
|}

let twolf =
  {|
  // twolf analog: annealing-style placement of cells on a line to
  // minimize wire length, with deterministic cooling
  global int place[200];   // cell -> slot
  global int net_a[400];
  global int net_b[400];
  global int rngs;
  func next_random(int bound) {
    rngs = (rngs * 1103515245 + 12345) & 1073741823;
    return rngs % bound;
  }
  func absval(int x) { if (x < 0) { return -x; } return x; }
  func wirelen(int nets) {
    int total = 0;
    int i = 0;
    while (i < nets) {
      total = total + absval(place[net_a[i]] - place[net_b[i]]);
      i = i + 1;
    }
    return total;
  }
  func main() {
    int cells = read();
    rngs = read();
    int nets = cells * 2;
    int i = 0;
    while (i < cells) { place[i] = i; i = i + 1; }
    i = 0;
    while (i < nets) {
      net_a[i] = next_random(cells);
      net_b[i] = next_random(cells);
      i = i + 1;
    }
    int cost = wirelen(nets);
    int temperature = 100;
    int accepted = 0;
    int rejected = 0;
    while (temperature > 0) {
      int trial = 0;
      while (trial < cells) {
        int a = next_random(cells);
        int b = next_random(cells);
        int t = place[a]; place[a] = place[b]; place[b] = t;
        int nc = wirelen(nets);
        int delta = nc - cost;
        if (delta <= temperature) { cost = nc; accepted = accepted + 1; }
        else {
          t = place[a]; place[a] = place[b]; place[b] = t;
          rejected = rejected + 1;
        }
        trial = trial + 1;
      }
      temperature = temperature - 20;
    }
    print(cost);
    print(accepted);
    print(rejected);
    return 0;
  }
|}

let vortex =
  {|
  // vortex analog: an in-memory database — open-addressing hash table
  // with inserts, lookups, updates and deletes
  global int keys[1024];
  global int vals[1024];
  global int used[1024];   // 0 empty, 1 used, 2 tombstone
  global int size_;
  func hash(int k) { return ((k * 2654435761) & 1073741823) % 1024; }
  func insert(int k, int v) {
    int h = hash(k);
    int probes = 0;
    while (probes < 1024) {
      if (used[h] != 1) { keys[h] = k; vals[h] = v; used[h] = 1; size_ = size_ + 1; return probes; }
      if (keys[h] == k) { vals[h] = v; return probes; }
      h = (h + 1) % 1024;
      probes = probes + 1;
    }
    return -1;
  }
  func lookup(int k) {
    int h = hash(k);
    int probes = 0;
    while (probes < 1024) {
      if (used[h] == 0) { return -1; }
      if (used[h] == 1 && keys[h] == k) { return vals[h]; }
      h = (h + 1) % 1024;
      probes = probes + 1;
    }
    return -1;
  }
  func remove(int k) {
    int h = hash(k);
    int probes = 0;
    while (probes < 1024) {
      if (used[h] == 0) { return 0; }
      if (used[h] == 1 && keys[h] == k) { used[h] = 2; size_ = size_ - 1; return 1; }
      h = (h + 1) % 1024;
      probes = probes + 1;
    }
    return 0;
  }
  func main() {
    int ops = read();
    int seed = read();
    int x = seed;
    int found = 0;
    int removed = 0;
    int i = 0;
    while (i < ops) {
      x = (x * 1103515245 + 12345) & 1073741823;
      int k = (x >> 4) & 511;
      int action = x % 3;
      if (action == 0) { insert(k, i); }
      if (action == 1) { if (lookup(k) >= 0) { found = found + 1; } }
      if (action == 2) { removed = removed + remove(k); }
      i = i + 1;
    }
    print(size_);
    print(found);
    print(removed);
    return 0;
  }
|}

let vpr =
  {|
  // vpr analog: BFS maze routing on a grid with obstacles
  global int grid[4096];    // 64x64: 0 free, 1 obstacle
  global int dist[4096];
  global int queue[4096];
  func idx(int r, int c) { return r * 64 + c; }
  func main() {
    int obstacles = read();
    int seed = read();
    int x = seed;
    int i = 0;
    while (i < 4096) { dist[i] = -1; i = i + 1; }
    i = 0;
    while (i < obstacles) {
      x = (x * 1103515245 + 12345) & 1073741823;
      int cell = x % 4096;
      if (cell != 0 && cell != 4095) { grid[cell] = 1; }
      i = i + 1;
    }
    // BFS from corner to corner
    int head = 0;
    int tail = 0;
    queue[tail] = 0;
    tail = tail + 1;
    dist[0] = 0;
    int visited = 0;
    while (head < tail) {
      int cur = queue[head];
      head = head + 1;
      visited = visited + 1;
      int r = cur / 64;
      int c = cur % 64;
      int d = dist[cur];
      if (r > 0 && grid[idx(r - 1, c)] == 0 && dist[idx(r - 1, c)] < 0) {
        dist[idx(r - 1, c)] = d + 1; queue[tail] = idx(r - 1, c); tail = tail + 1;
      }
      if (r < 63 && grid[idx(r + 1, c)] == 0 && dist[idx(r + 1, c)] < 0) {
        dist[idx(r + 1, c)] = d + 1; queue[tail] = idx(r + 1, c); tail = tail + 1;
      }
      if (c > 0 && grid[idx(r, c - 1)] == 0 && dist[idx(r, c - 1)] < 0) {
        dist[idx(r, c - 1)] = d + 1; queue[tail] = idx(r, c - 1); tail = tail + 1;
      }
      if (c < 63 && grid[idx(r, c + 1)] == 0 && dist[idx(r, c + 1)] < 0) {
        dist[idx(r, c + 1)] = d + 1; queue[tail] = idx(r, c + 1); tail = tail + 1;
      }
    }
    print(visited);
    print(dist[4095]);
    return 0;
  }
|}

let mk name description input alt source =
  Workload.make ~name ~description ~input ~alt_inputs:alt source

let all =
  [
    mk "bzip2" "RLE + move-to-front coder" [ 1200; 99 ] [ [ 200; 7 ] ] bzip2;
    mk "crafty" "negamax game search with alpha-beta" [ 21; 12 ] [ [ 9; 6 ]; [ 8; 2 ]; [ 16; 9 ] ] crafty;
    mk "gap" "multi-digit factorial arithmetic" [ 120 ] [ [ 25 ] ] gap;
    mk "gcc" "postfix expression compiler with constant folding" [ 120; 5 ] [ [ 12; 3 ] ] gcc;
    mk "gzip" "LZ77 window matcher" [ 1100; 33 ] [ [ 150; 5 ] ] gzip;
    mk "mcf" "Bellman-Ford cost relaxation" [ 120; 41 ] [ [ 20; 3 ] ] mcf;
    mk "parser" "token stream validator" [ 1500; 21 ] [ [ 100; 2 ] ] parser;
    mk "twolf" "annealing placement" [ 60; 17 ] [ [ 12; 5 ] ] twolf;
    mk "vortex" "hash-table database operations" [ 2500; 77 ] [ [ 150; 9 ] ] vortex;
    mk "vpr" "BFS maze router" [ 600; 55 ] [ [ 50; 4 ] ] vpr;
  ]

let find name = List.find (fun (w : Workload.t) -> w.Workload.name = name) all
