type t = {
  name : string;
  description : string;
  source : string;
  input : int list;
  alt_inputs : int list list;
}

let vm_cache : (string, Stackvm.Program.t) Hashtbl.t = Hashtbl.create 16
let native_cache : (string, Nativesim.Asm.program) Hashtbl.t = Hashtbl.create 16

let vm_program w =
  match Hashtbl.find_opt vm_cache w.name with
  | Some p -> p
  | None ->
      let p = Minic.To_stackvm.compile_source w.source in
      Hashtbl.replace vm_cache w.name p;
      p

let native_program w =
  match Hashtbl.find_opt native_cache w.name with
  | Some p -> p
  | None ->
      let p = Minic.To_native.compile_source w.source in
      Hashtbl.replace native_cache w.name p;
      p

let native_binary w = Nativesim.Asm.assemble (native_program w)

let expected_outputs w input =
  let r = Minic.Interp.run (Minic.Parser.parse w.source) ~input in
  match r.Minic.Interp.outcome with
  | Minic.Interp.Finished _ -> r.Minic.Interp.outputs
  | Minic.Interp.Runtime_error m -> failwith (w.name ^ ": reference run failed: " ^ m)
  | Minic.Interp.Out_of_fuel -> failwith (w.name ^ ": reference run out of fuel")

let make ~name ~description ~input ?(alt_inputs = []) source =
  ignore (Minic.Typecheck.check (Minic.Parser.parse source));
  { name; description; source; input; alt_inputs }
