(** Benchmark workloads.

    The paper evaluates the Java track on CaffeineMark (tiny, almost all
    hot) and Jess (large, mostly cold), and the native track on ten
    SPECint-2000 programs.  We reproduce the {e shapes}: every workload
    here is a MiniC program compiled to whichever substrate an experiment
    needs (see DESIGN.md for the substitution argument). *)

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC source *)
  input : int list;  (** the secret/training input sequence *)
  alt_inputs : int list list;  (** additional inputs for correctness checks *)
}

val vm_program : t -> Stackvm.Program.t
(** Compile for the stack VM (cached). *)

val native_program : t -> Nativesim.Asm.program
(** Compile for the native machine (cached). *)

val native_binary : t -> Nativesim.Binary.t

val expected_outputs : t -> int list -> int list
(** Reference outputs (from the MiniC interpreter) for a given input.
    Raises [Failure] if the reference run does not finish. *)

val make : name:string -> description:string -> input:int list -> ?alt_inputs:int list list -> string -> t
(** Build (and eagerly typecheck) a workload. *)
