let sieve_src =
  {|
  // count primes below n with the sieve of Eratosthenes
  func sieve(int n) {
    int flags[n];
    int count = 0;
    int i = 2;
    while (i < n) { flags[i] = 1; i = i + 1; }
    i = 2;
    while (i < n) {
      if (flags[i] == 1) {
        count = count + 1;
        int j = i + i;
        while (j < n) { flags[j] = 0; j = j + i; }
      }
      i = i + 1;
    }
    return count;
  }
  func main() {
    int scale = read();
    print(sieve(scale));
    return 0;
  }
|}

let loop_src =
  {|
  // nested counting loops
  func spin(int outer, int inner) {
    int acc = 0;
    int i = 0;
    while (i < outer) {
      int j = 0;
      while (j < inner) {
        acc = acc + ((i * j) & 1023);
        j = j + 1;
      }
      i = i + 1;
    }
    return acc;
  }
  func main() {
    int scale = read();
    print(spin(scale, 37));
    return 0;
  }
|}

let logic_src =
  {|
  // bit-twiddling with dense conditionals
  func churn(int n, int seed) {
    int x = seed;
    int acc = 0;
    int i = 0;
    while (i < n) {
      x = (x * 1103515245 + 12345) & 1073741823;
      if ((x & 1) == 1) { acc = acc ^ x; } else { acc = acc + (x >> 3); }
      if ((x & 6) == 4) { acc = acc - 7; }
      if (x % 5 == 0 && (x & 8) != 0) { acc = acc + 11; }
      i = i + 1;
    }
    return acc;
  }
  func main() {
    int scale = read();
    print(churn(scale, 42));
    return 0;
  }
|}

let method_src =
  {|
  // call-intensive kernel: small functions called in a tight loop
  func add3(int a, int b, int c) { return a + b + c; }
  func twice(int x) { return add3(x, x, 0); }
  func combine(int a, int b) { return add3(twice(a), twice(b), 1); }
  func fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  func main() {
    int scale = read();
    int acc = 0;
    int i = 0;
    while (i < scale) {
      acc = acc + combine(i, acc & 255);
      i = i + 1;
    }
    print(acc);
    print(fib(13));
    return 0;
  }
|}

let array_src =
  {|
  // array shuffles, reversals and prefix sums
  func reverse(arr a) {
    int i = 0;
    int j = len(a) - 1;
    while (i < j) {
      int t = a[i];
      a[i] = a[j];
      a[j] = t;
      i = i + 1;
      j = j - 1;
    }
    return 0;
  }
  func prefix_sum(arr a) {
    int i = 1;
    while (i < len(a)) { a[i] = a[i] + a[i - 1]; i = i + 1; }
    return a[len(a) - 1];
  }
  func main() {
    int n = read();
    int a[n];
    int i = 0;
    while (i < n) { a[i] = (i * 17) % 101; i = i + 1; }
    reverse(a);
    int total = prefix_sum(a);
    reverse(a);
    print(total);
    print(a[0]);
    return 0;
  }
|}

let suite_src =
  {|
  // the five CaffeineMark-analog kernels in one harness
  func sieve(int n) {
    int flags[n];
    int count = 0;
    int i = 2;
    while (i < n) { flags[i] = 1; i = i + 1; }
    i = 2;
    while (i < n) {
      if (flags[i] == 1) {
        count = count + 1;
        int j = i + i;
        while (j < n) { flags[j] = 0; j = j + i; }
      }
      i = i + 1;
    }
    return count;
  }
  func spin(int outer, int inner) {
    int acc = 0;
    int i = 0;
    while (i < outer) {
      int j = 0;
      while (j < inner) { acc = acc + ((i * j) & 1023); j = j + 1; }
      i = i + 1;
    }
    return acc;
  }
  func churn(int n, int seed) {
    int x = seed;
    int acc = 0;
    int i = 0;
    while (i < n) {
      x = (x * 1103515245 + 12345) & 1073741823;
      if ((x & 1) == 1) { acc = acc ^ x; } else { acc = acc + (x >> 3); }
      if ((x & 6) == 4) { acc = acc - 7; }
      if (x % 5 == 0 && (x & 8) != 0) { acc = acc + 11; }
      i = i + 1;
    }
    return acc;
  }
  func add3(int a, int b, int c) { return a + b + c; }
  func twice(int x) { return add3(x, x, 0); }
  func combine(int a, int b) { return add3(twice(a), twice(b), 1); }
  func calls(int n) {
    int acc = 0;
    int i = 0;
    while (i < n) { acc = acc + combine(i, acc & 255); i = i + 1; }
    return acc;
  }
  func array_kernel(int n) {
    int a[n];
    int i = 0;
    while (i < n) { a[i] = (i * 17) % 101; i = i + 1; }
    i = 0;
    int j = n - 1;
    while (i < j) { int t = a[i]; a[i] = a[j]; a[j] = t; i = i + 1; j = j - 1; }
    i = 1;
    while (i < n) { a[i] = a[i] + a[i - 1]; i = i + 1; }
    return a[n - 1];
  }
  func main() {
    int scale = read();
    print(sieve(scale * 4));
    print(spin(scale, 23));
    print(churn(scale * 2, 42));
    print(calls(scale));
    print(array_kernel(scale * 2));
    return 0;
  }
|}

let suite =
  Workload.make ~name:"caffeine" ~description:"CaffeineMark analog: five hot microbenchmark kernels"
    ~input:[ 300 ]
    ~alt_inputs:[ [ 50 ]; [ 123 ] ]
    suite_src

let kernels =
  [
    Workload.make ~name:"caffeine-sieve" ~description:"prime sieve kernel" ~input:[ 1000 ]
      ~alt_inputs:[ [ 100 ] ] sieve_src;
    Workload.make ~name:"caffeine-loop" ~description:"nested loop kernel" ~input:[ 250 ]
      ~alt_inputs:[ [ 40 ] ] loop_src;
    Workload.make ~name:"caffeine-logic" ~description:"bit-twiddling conditional kernel" ~input:[ 800 ]
      ~alt_inputs:[ [ 90 ] ] logic_src;
    Workload.make ~name:"caffeine-method" ~description:"call-intensive kernel" ~input:[ 400 ]
      ~alt_inputs:[ [ 60 ] ] method_src;
    Workload.make ~name:"caffeine-array" ~description:"array manipulation kernel" ~input:[ 900 ]
      ~alt_inputs:[ [ 80 ] ] array_src;
  ]
