(** The SPECint-2000 analog suite (§5.2): ten MiniC programs with the
    computational flavour of the paper's benchmarks (eon and perl are
    omitted there too).  Each reads a size/seed from its input and prints
    checksums, so attacked binaries are classified as broken by output
    comparison. *)

val all : Workload.t list
(** bzip2, crafty, gap, gcc, gzip, mcf, parser, twolf, vortex, vpr —
    in that order, matching Figure 9's x axis. *)

val find : string -> Workload.t
(** Lookup by name; raises [Not_found]. *)
