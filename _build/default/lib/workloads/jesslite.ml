let source =
  {|
  // jess-lite: a forward-chaining production system over (entity,
  // attribute, value) facts with a priority agenda.

  global int MAXFACTS;
  global int MAXRULES;
  global int MAXAGENDA;

  // fact store: parallel arrays
  global int f_entity[600];
  global int f_attr[600];
  global int f_value[600];
  global int n_facts;

  // rule store: two condition patterns and a production each
  global int r_c1_attr[40];
  global int r_c1_op[40];     // 0 =, 1 <, 2 >
  global int r_c1_val[40];
  global int r_c2_attr[40];
  global int r_c2_op[40];
  global int r_c2_val[40];
  global int r_out_attr[40];
  global int r_out_mode[40];  // 0 sum, 1 diff, 2 min, 3 max, 4 const
  global int r_out_const[40];
  global int r_priority[40];
  global int n_rules;

  // agenda of pending activations
  global int a_rule[400];
  global int a_f1[400];
  global int a_f2[400];
  global int n_agenda;

  global int firings;
  global int rng_state;

  func next_random(int bound) {
    rng_state = (rng_state * 1103515245 + 12345) & 1073741823;
    return rng_state % bound;
  }

  func find_fact(int entity, int attr) {
    int i = 0;
    while (i < n_facts) {
      if (f_entity[i] == entity && f_attr[i] == attr) { return i; }
      i = i + 1;
    }
    return -1;
  }

  func assert_fact(int entity, int attr, int value) {
    int existing = find_fact(entity, attr);
    if (existing >= 0) {
      if (f_value[existing] == value) { return 0; }
      f_value[existing] = value;
      return 1;
    }
    if (n_facts >= MAXFACTS) { return 0; }
    f_entity[n_facts] = entity;
    f_attr[n_facts] = attr;
    f_value[n_facts] = value;
    n_facts = n_facts + 1;
    return 1;
  }

  func test_condition(int op, int actual, int expected) {
    if (op == 0) { return actual == expected; }
    if (op == 1) { return actual < expected; }
    if (op == 2) { return actual > expected; }
    return 0;
  }

  func produce(int mode, int v1, int v2, int constant) {
    if (mode == 0) { return v1 + v2; }
    if (mode == 1) { return v1 - v2; }
    if (mode == 2) { if (v1 < v2) { return v1; } return v2; }
    if (mode == 3) { if (v1 > v2) { return v1; } return v2; }
    return constant;
  }

  func add_rule(int c1a, int c1o, int c1v, int c2a, int c2o, int c2v,
                int oa, int om, int oc, int prio) {
    if (n_rules >= MAXRULES) { return -1; }
    r_c1_attr[n_rules] = c1a;
    r_c1_op[n_rules] = c1o;
    r_c1_val[n_rules] = c1v;
    r_c2_attr[n_rules] = c2a;
    r_c2_op[n_rules] = c2o;
    r_c2_val[n_rules] = c2v;
    r_out_attr[n_rules] = oa;
    r_out_mode[n_rules] = om;
    r_out_const[n_rules] = oc;
    r_priority[n_rules] = prio;
    n_rules = n_rules + 1;
    return n_rules - 1;
  }

  func init_rules() {
    // attribute vocabulary: 1 temp, 2 pressure, 3 status, 4 alarm,
    // 5 load, 6 mode, 7 score, 8 level
    add_rule(1, 2, 90,  2, 2, 50,  4, 4, 1, 10);   // hot & high pressure -> alarm
    add_rule(1, 1, 10,  5, 1, 5,   6, 4, 2, 8);    // cold & idle -> eco mode
    add_rule(2, 2, 80,  5, 2, 60,  8, 0, 0, 9);    // pressure+load -> level = sum
    add_rule(3, 0, 1,   1, 2, 70,  7, 1, 0, 5);    // active & warm -> score = diff
    add_rule(5, 2, 40,  2, 1, 30,  7, 2, 0, 4);    // loaded & low pressure -> score = min
    add_rule(1, 2, 50,  5, 2, 20,  8, 3, 0, 6);    // warm & loaded -> level = max
    add_rule(4, 0, 1,   3, 0, 1,   6, 4, 9, 12);   // alarm & active -> safe mode
    add_rule(6, 0, 2,   1, 1, 15,  3, 4, 0, 3);    // eco & very cold -> inactive
    add_rule(7, 2, 100, 8, 2, 100, 4, 4, 2, 11);   // extremes -> alarm level 2
    add_rule(8, 2, 120, 5, 2, 10,  7, 0, 0, 7);    // high level & load -> score = sum
    add_rule(2, 1, 20,  1, 1, 30,  6, 4, 1, 2);    // low pressure & cool -> mode 1
    add_rule(3, 0, 0,   6, 0, 9,   7, 4, 0, 1);    // inactive & safe -> score 0
    return n_rules;
  }

  func agenda_push(int rule, int fact1, int fact2) {
    if (n_agenda >= MAXAGENDA) { return 0; }
    a_rule[n_agenda] = rule;
    a_f1[n_agenda] = fact1;
    a_f2[n_agenda] = fact2;
    n_agenda = n_agenda + 1;
    return 1;
  }

  // conflict resolution: highest priority first, then earliest rule
  func agenda_pop() {
    if (n_agenda == 0) { return -1; }
    int best = 0;
    int i = 1;
    while (i < n_agenda) {
      if (r_priority[a_rule[i]] > r_priority[a_rule[best]]) { best = i; }
      i = i + 1;
    }
    int rule = a_rule[best];
    int f1 = a_f1[best];
    int f2 = a_f2[best];
    // compact the agenda
    a_rule[best] = a_rule[n_agenda - 1];
    a_f1[best] = a_f1[n_agenda - 1];
    a_f2[best] = a_f2[n_agenda - 1];
    n_agenda = n_agenda - 1;
    // re-encode the popped entry
    return rule * 1000000 + f1 * 1000 + f2;
  }

  func match_rule(int rule) {
    int found = 0;
    int i = 0;
    while (i < n_facts) {
      if (f_attr[i] == r_c1_attr[rule]) {
        if (test_condition(r_c1_op[rule], f_value[i], r_c1_val[rule]) == 1) {
          int j = 0;
          while (j < n_facts) {
            if (f_entity[j] == f_entity[i] && f_attr[j] == r_c2_attr[rule] && j != i) {
              if (test_condition(r_c2_op[rule], f_value[j], r_c2_val[rule]) == 1) {
                agenda_push(rule, i, j);
                found = found + 1;
              }
            }
            j = j + 1;
          }
        }
      }
      i = i + 1;
    }
    return found;
  }

  func fire(int encoded) {
    int rule = encoded / 1000000;
    int f1 = (encoded / 1000) % 1000;
    int f2 = encoded % 1000;
    int value = produce(r_out_mode[rule], f_value[f1], f_value[f2], r_out_const[rule]);
    int changed = assert_fact(f_entity[f1], r_out_attr[rule], value);
    if (changed == 1) { firings = firings + 1; }
    return changed;
  }

  func run_engine(int max_cycles) {
    int cycle = 0;
    while (cycle < max_cycles) {
      n_agenda = 0;
      int r = 0;
      int total = 0;
      while (r < n_rules) { total = total + match_rule(r); r = r + 1; }
      if (total == 0) { break; }
      int changed_any = 0;
      while (n_agenda > 0) {
        int encoded = agenda_pop();
        if (encoded < 0) { break; }
        if (fire(encoded) == 1) { changed_any = 1; }
      }
      if (changed_any == 0) { break; }
      cycle = cycle + 1;
    }
    return cycle;
  }

  func checksum() {
    int acc = 0;
    int i = 0;
    while (i < n_facts) {
      acc = (acc * 31 + f_entity[i] * 7 + f_attr[i] * 3 + f_value[i]) & 1073741823;
      i = i + 1;
    }
    return acc;
  }

  // ---- cold diagnostic and validation machinery ----
  // (like Jess's explanation/inspection commands: a lot of code that a
  // normal run touches rarely or never)

  func attr_code(int attr) {
    if (attr == 1) { return 1084; }     // "temp"-ish tag
    if (attr == 2) { return 2093; }
    if (attr == 3) { return 3017; }
    if (attr == 4) { return 4055; }
    if (attr == 5) { return 5120; }
    if (attr == 6) { return 6233; }
    if (attr == 7) { return 7301; }
    if (attr == 8) { return 8118; }
    return 9999;
  }

  func op_code(int op) {
    if (op == 0) { return 100; }
    if (op == 1) { return 200; }
    if (op == 2) { return 300; }
    return 400;
  }

  func mode_code(int mode) {
    if (mode == 0) { return 11; }
    if (mode == 1) { return 22; }
    if (mode == 2) { return 33; }
    if (mode == 3) { return 44; }
    return 55;
  }

  func explain_rule(int rule) {
    int acc = attr_code(r_c1_attr[rule]) * 3 + op_code(r_c1_op[rule]);
    acc = acc + attr_code(r_c2_attr[rule]) * 5 + op_code(r_c2_op[rule]);
    acc = acc + attr_code(r_out_attr[rule]) * 7 + mode_code(r_out_mode[rule]);
    acc = acc + r_priority[rule] * 1000;
    return acc & 1073741823;
  }

  func validate_rule(int rule) {
    if (rule < 0 || rule >= n_rules) { return -1; }
    if (r_c1_op[rule] < 0 || r_c1_op[rule] > 2) { return -2; }
    if (r_c2_op[rule] < 0 || r_c2_op[rule] > 2) { return -3; }
    if (r_out_mode[rule] < 0 || r_out_mode[rule] > 4) { return -4; }
    if (r_priority[rule] < 0) { return -5; }
    if (r_c1_attr[rule] == r_out_attr[rule] && r_c2_attr[rule] == r_out_attr[rule]) { return -6; }
    return 0;
  }

  func validate_all_rules() {
    int bad = 0;
    int r = 0;
    while (r < n_rules) {
      if (validate_rule(r) != 0) { bad = bad + 1; }
      r = r + 1;
    }
    return bad;
  }

  func fact_histogram(int attr) {
    int lo = 1000000;
    int hi = -1000000;
    int count = 0;
    int total = 0;
    int i = 0;
    while (i < n_facts) {
      if (f_attr[i] == attr) {
        count = count + 1;
        total = total + f_value[i];
        if (f_value[i] < lo) { lo = f_value[i]; }
        if (f_value[i] > hi) { hi = f_value[i]; }
      }
      i = i + 1;
    }
    if (count == 0) { return 0; }
    return count * 1000000 + (hi - lo) * 1000 + total / count;
  }

  func entity_profile(int entity) {
    int mask = 0;
    int i = 0;
    while (i < n_facts) {
      if (f_entity[i] == entity) { mask = mask | (1 << f_attr[i]); }
      i = i + 1;
    }
    return mask;
  }

  func count_alarms() {
    int alarms = 0;
    int i = 0;
    while (i < n_facts) {
      if (f_attr[i] == 4 && f_value[i] > 0) { alarms = alarms + 1; }
      i = i + 1;
    }
    return alarms;
  }

  func retract_attr(int attr) {
    // remove all facts with the attribute (compacting) — rarely used
    int kept = 0;
    int i = 0;
    while (i < n_facts) {
      if (f_attr[i] != attr) {
        f_entity[kept] = f_entity[i];
        f_attr[kept] = f_attr[i];
        f_value[kept] = f_value[i];
        kept = kept + 1;
      }
      i = i + 1;
    }
    int removed = n_facts - kept;
    n_facts = kept;
    return removed;
  }

  func report() {
    int acc = validate_all_rules();
    acc = (acc * 31 + explain_rule(0)) & 1073741823;
    acc = (acc * 31 + explain_rule(n_rules - 1)) & 1073741823;
    acc = (acc * 31 + fact_histogram(1)) & 1073741823;
    acc = (acc * 31 + fact_histogram(7)) & 1073741823;
    acc = (acc * 31 + entity_profile(0)) & 1073741823;
    acc = (acc * 31 + count_alarms()) & 1073741823;
    return acc;
  }

  func main() {
    MAXFACTS = 600;
    MAXRULES = 40;
    MAXAGENDA = 400;
    int entities = read();
    rng_state = read();
    init_rules();
    // seed facts: temperature, pressure, load, status per entity
    int e = 0;
    while (e < entities) {
      assert_fact(e, 1, next_random(120));
      assert_fact(e, 2, next_random(100));
      assert_fact(e, 5, next_random(90));
      assert_fact(e, 3, next_random(2));
      e = e + 1;
    }
    int cycles = run_engine(6);
    print(n_facts);
    print(firings);
    print(cycles);
    print(checksum());
    print(report());
    return 0;
  }
|}

let engine =
  Workload.make ~name:"jess" ~description:"Jess analog: forward-chaining production-rule engine"
    ~input:[ 12; 77 ]
    ~alt_inputs:[ [ 6; 3 ]; [ 12; 999 ] ]
    source
