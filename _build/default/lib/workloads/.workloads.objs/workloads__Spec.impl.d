lib/workloads/spec.ml: List Workload
