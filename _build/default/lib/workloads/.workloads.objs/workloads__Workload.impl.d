lib/workloads/workload.ml: Hashtbl Minic Nativesim Stackvm
