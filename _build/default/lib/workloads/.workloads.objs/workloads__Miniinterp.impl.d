lib/workloads/miniinterp.ml: Workload
