lib/workloads/jesslite.ml: Workload
