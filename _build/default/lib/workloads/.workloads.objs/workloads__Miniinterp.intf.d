lib/workloads/miniinterp.mli: Workload
