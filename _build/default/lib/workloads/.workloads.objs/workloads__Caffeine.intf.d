lib/workloads/caffeine.mli: Workload
