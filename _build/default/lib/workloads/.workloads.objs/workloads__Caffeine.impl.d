lib/workloads/caffeine.ml: Workload
