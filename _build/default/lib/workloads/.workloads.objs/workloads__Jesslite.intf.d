lib/workloads/jesslite.mli: Workload
