lib/workloads/workload.mli: Nativesim Stackvm
