(** The Jess analog (§5.1): a forward-chaining production-rule engine.

    Like the paper's Jess, this is a language-interpreter-shaped workload:
    considerably more code than CaffeineMark, with a low proportion of hot
    instructions (rule tables, agenda management and rarely-firing rules
    are cold), so inverse-frequency insertion can hide watermark pieces
    with negligible slowdown — the flat Jess curve of Figure 8(a). *)

val engine : Workload.t
