(** MiniInterp: a bytecode interpreter written in MiniC.

    A second interpreter-shaped workload (beyond Jess-lite): a small stack
    machine with a dispatch loop — the classic structure of SpecJVM's
    language interpreters.  The dispatch loop is hot, the per-opcode
    handlers are lukewarm, and the program-assembly code is cold, giving a
    third hotness profile between CaffeineMark and Jess. *)

val interpreter : Workload.t
