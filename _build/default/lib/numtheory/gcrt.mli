(** The Generalized Chinese Remainder Theorem.

    Recombining the watermark (step D of Figure 4 in the paper) merges a set
    of congruences [W = x_k mod m_k] whose moduli are products of pairwise
    relatively prime base primes and therefore need not themselves be
    coprime.  Two congruences are compatible exactly when their residues
    agree modulo the gcd of their moduli; a compatible pair merges into a
    single congruence modulo the lcm. *)

type congruence = { residue : Bignum.t; modulus : Bignum.t }
(** A statement [W = residue (mod modulus)] with [0 <= residue < modulus]. *)

val make : residue:Bignum.t -> modulus:Bignum.t -> congruence
(** Normalizes the residue into [\[0, modulus)]. Raises [Invalid_argument]
    if the modulus is not positive. *)

val make_int : residue:int -> modulus:int -> congruence

val compatible : congruence -> congruence -> bool
(** Whether the two congruences admit a common solution. *)

val merge : congruence -> congruence -> congruence option
(** [merge a b] is the congruence modulo [lcm a.modulus b.modulus] implied
    by both, or [None] when they are incompatible. *)

val merge_all : congruence list -> congruence option
(** Folds {!merge} over the list; [None] on any incompatibility. The empty
    list yields the trivial congruence [0 mod 1]. *)

val solve : congruence list -> Bignum.t option
(** The smallest nonnegative solution of the system, if consistent. *)

val pp : Format.formatter -> congruence -> unit
