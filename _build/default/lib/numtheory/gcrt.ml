type congruence = { residue : Bignum.t; modulus : Bignum.t }

let make ~residue ~modulus =
  if Bignum.sign modulus <= 0 then invalid_arg "Gcrt.make: modulus must be positive";
  { residue = Bignum.erem residue modulus; modulus }

let make_int ~residue ~modulus = make ~residue:(Bignum.of_int residue) ~modulus:(Bignum.of_int modulus)

let compatible a b =
  let g = Bignum.gcd a.modulus b.modulus in
  Bignum.is_zero (Bignum.erem (Bignum.sub a.residue b.residue) g)

let merge a b =
  let open Bignum in
  let g, s, _ = egcd a.modulus b.modulus in
  let diff = sub b.residue a.residue in
  let q, r = divmod diff g in
  if not (is_zero r) then None
  else begin
    (* x = a.residue + a.modulus * (q * s mod (b.modulus / g)) solves both:
       s * a.modulus = g (mod b.modulus), so the step is diff (mod b.modulus). *)
    let m_over_g = div b.modulus g in
    let k = erem (mul q s) m_over_g in
    let modulus = mul a.modulus m_over_g in
    let residue = erem (add a.residue (mul a.modulus k)) modulus in
    Some { residue; modulus }
  end

let trivial = { residue = Bignum.zero; modulus = Bignum.one }

let merge_all congruences =
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> None
      | Some merged -> merge merged c)
    (Some trivial) congruences

let solve congruences =
  match merge_all congruences with
  | None -> None
  | Some { residue; _ } -> Some residue

let pp fmt { residue; modulus } = Format.fprintf fmt "W = %a (mod %a)" Bignum.pp residue Bignum.pp modulus
