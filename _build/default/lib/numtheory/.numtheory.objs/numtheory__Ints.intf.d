lib/numtheory/ints.mli: Util
