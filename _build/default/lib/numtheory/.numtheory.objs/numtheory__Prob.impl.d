lib/numtheory/prob.ml: Bignum
