lib/numtheory/prob.mli: Bignum
