lib/numtheory/gcrt.ml: Bignum Format List
