lib/numtheory/ints.ml: Hashtbl List Util
