lib/numtheory/gcrt.mli: Bignum Format
