let binomial n k =
  if k < 0 || k > n then Bignum.zero
  else begin
    let k = min k (n - k) in
    let num = ref Bignum.one in
    for i = 0 to k - 1 do
      num := Bignum.mul !num (Bignum.of_int (n - i))
    done;
    let den = ref Bignum.one in
    for i = 1 to k do
      den := Bignum.mul !den (Bignum.of_int i)
    done;
    Bignum.div !num !den
  end

let success_given_deletion_prob ~nodes ~q =
  let n = nodes in
  let total = ref 0.0 in
  for j = 0 to n do
    (* All edges touching a fixed set of j isolated nodes must be deleted:
       j*(n-j) edges to the outside plus C(j,2) internal ones. *)
    let exponent = (j * (n - j)) + (j * (j - 1) / 2) in
    let term = Bignum.to_float (binomial n j) *. (q ** float_of_int exponent) in
    total := !total +. if j mod 2 = 0 then term else -.term
  done;
  max 0.0 (min 1.0 !total)

let success_given_survivors ~nodes ~survivors =
  let n = nodes in
  let edges = n * (n - 1) / 2 in
  if survivors < 0 || survivors > edges then invalid_arg "Prob.success_given_survivors";
  (* P(cover) = sum_j (-1)^j C(n,j) C(E(n-j), k) / C(E(n), k) where E(m) is
     the number of edges of K_m and k the number of survivors: the survivors
     must all avoid the j isolated nodes. Exact big-integer arithmetic keeps
     the alternating sum stable; we convert only the final ratio. *)
  let k = survivors in
  let numerator = ref Bignum.zero in
  for j = 0 to n do
    let remaining_edges = (n - j) * (n - j - 1) / 2 in
    let ways = Bignum.mul (binomial n j) (binomial remaining_edges k) in
    numerator := if j mod 2 = 0 then Bignum.add !numerator ways else Bignum.sub !numerator ways
  done;
  let denominator = binomial edges k in
  if Bignum.is_zero denominator then 0.0
  else begin
    (* Scale to keep precision: compute floor(num * 10^15 / den) / 10^15. *)
    let scale = Bignum.pow (Bignum.of_int 10) 15 in
    let scaled = Bignum.div (Bignum.mul !numerator scale) denominator in
    max 0.0 (min 1.0 (Bignum.to_float scaled /. 1e15))
  end

let expected_survivors ~nodes ~q =
  let edges = nodes * (nodes - 1) / 2 in
  float_of_int edges *. (1.0 -. q)
