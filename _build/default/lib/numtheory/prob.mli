(** The recovery-probability model behind Figure 5 of the paper.

    Model the [r] base primes as the nodes of the complete graph [K_r]; each
    embedded piece [W = x mod (p_i * p_j)] is the edge [{p_i, p_j}]. Attacks
    delete edges; recombination succeeds when every node keeps at least one
    incident edge (then [W mod p_i] is known for all [i] and the Generalized
    CRT pins down [W]).  Equation (1) of the paper approximates the success
    probability by inclusion-exclusion over the set of isolated nodes. *)

val binomial : int -> int -> Bignum.t
(** [binomial n k] is [n choose k]; zero outside [0 <= k <= n]. *)

val success_given_deletion_prob : nodes:int -> q:float -> float
(** Equation (1): starting from the complete graph on [nodes] nodes, each
    edge independently deleted with probability [q], the probability that
    every node retains an incident edge. Computed by inclusion-exclusion
    with the exact exponent [j*(nodes-j) + j*(j-1)/2] (all edges incident to
    a chosen set of [j] isolated nodes must be gone). *)

val success_given_survivors : nodes:int -> survivors:int -> float
(** The conditional variant plotted in Figure 5: exactly [survivors] of the
    [nodes*(nodes-1)/2] pieces survive, as a uniformly random subset; the
    probability that they cover every node. Exact, via inclusion-exclusion
    on binomial coefficients. *)

val expected_survivors : nodes:int -> q:float -> float
(** Mean number of surviving edges under deletion probability [q]. *)
