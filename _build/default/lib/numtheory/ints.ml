let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let egcd a b =
  let rec go r0 r1 s0 s1 t0 t1 =
    if r1 = 0 then (r0, s0, t0) else go r1 (r0 mod r1) s1 (s0 - ((r0 / r1) * s1)) t1 (t0 - ((r0 / r1) * t1))
  in
  let g, s, t = go a b 1 0 0 1 in
  if g < 0 then (-g, -s, -t) else (g, s, t)

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 2)) in
    go 3
  end

let next_prime n =
  let rec go k = if is_prime k then k else go (k + 1) in
  go (max 2 (n + 1))

let primes_with_bits ~bits ~count =
  if bits < 2 then invalid_arg "Ints.primes_with_bits: bits must be >= 2";
  let lo = 1 lsl (bits - 1) and hi = (1 lsl bits) - 1 in
  let rec collect p acc n =
    if n = 0 then List.rev acc
    else if p > hi then invalid_arg "Ints.primes_with_bits: not enough primes in range"
    else begin
      let p = next_prime (p - 1) in
      if p > hi then invalid_arg "Ints.primes_with_bits: not enough primes in range"
      else collect (p + 1) (p :: acc) (n - 1)
    end
  in
  collect lo [] count

let coprime_moduli ~rng ~bits ~count =
  if bits < 2 then invalid_arg "Ints.coprime_moduli: bits must be >= 2";
  let lo = 1 lsl (bits - 1) and hi = (1 lsl bits) - 1 in
  let seen = Hashtbl.create 16 in
  let rec draw acc n guard =
    if n = 0 then acc
    else if guard = 0 then invalid_arg "Ints.coprime_moduli: range exhausted"
    else begin
      let candidate = next_prime (Util.Prng.int_in rng lo hi - 1) in
      if candidate > hi || Hashtbl.mem seen candidate then draw acc n (guard - 1)
      else begin
        Hashtbl.add seen candidate ();
        draw (candidate :: acc) (n - 1) guard
      end
    end
  in
  List.sort compare (draw [] count (count * 1000))

let mod_pos a m =
  if m <= 0 then invalid_arg "Ints.mod_pos: modulus must be positive";
  let r = a mod m in
  if r < 0 then r + m else r
