(** Number theory on native integers.

    Watermark pieces are statements [W = x mod (p_i * p_j)] where the [p]s
    are pairwise relatively prime (Section 3.2 of the paper). Individual
    moduli and residues always fit in a native int (products of two ~26-bit
    primes), so the piece-level arithmetic lives here; only the final
    recombination of the full watermark needs {!Bignum}. *)

val gcd : int -> int -> int
(** Greatest common divisor of the absolute values. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, s, t)] with [s*a + t*b = g = gcd a b]. *)

val is_prime : int -> bool
(** Deterministic trial-division primality test; intended for values below
    [2^40] (the moduli used by the codec are ~26-bit primes). *)

val next_prime : int -> int
(** Smallest prime strictly greater than the argument. *)

val primes_with_bits : bits:int -> count:int -> int list
(** [primes_with_bits ~bits ~count] returns the [count] smallest primes of
    exactly [bits] bits (i.e. in [\[2^(bits-1), 2^bits)]). Raises
    [Invalid_argument] if the range contains too few primes. *)

val coprime_moduli : rng:Util.Prng.t -> bits:int -> count:int -> int list
(** [coprime_moduli ~rng ~bits ~count] draws [count] distinct primes of
    exactly [bits] bits uniformly at random — the pairwise relatively prime
    base moduli [p_1 .. p_r] of the embedding. *)

val mod_pos : int -> int -> int
(** [mod_pos a m] is the representative of [a mod m] in [\[0, m)];
    [m > 0]. *)
