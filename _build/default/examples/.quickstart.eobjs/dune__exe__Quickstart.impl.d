examples/quickstart.ml: Bignum List Pathmark Printf String
