examples/java_pipeline.ml: Bignum Codec List Pathmark Printf Stackvm Util Vmattacks Workloads
