examples/native_pipeline.mli:
