examples/collusion.mli:
