examples/fingerprint_audit.ml: Bignum List Pathmark Printf Util Vmattacks Workloads
