examples/java_pipeline.mli:
