examples/collusion.ml: Array Bignum List Pathmark Printf Stackvm Util Vmattacks Workloads
