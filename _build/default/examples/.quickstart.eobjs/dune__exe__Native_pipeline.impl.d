examples/native_pipeline.ml: Bignum List Nattacks Nwm Pathmark Printf Util Workloads
