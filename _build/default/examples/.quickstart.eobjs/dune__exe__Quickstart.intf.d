examples/quickstart.mli:
