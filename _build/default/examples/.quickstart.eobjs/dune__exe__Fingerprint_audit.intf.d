examples/fingerprint_audit.mli:
