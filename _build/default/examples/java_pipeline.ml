(* The full bytecode-track pipeline of Section 3, on the Jess-analog rule
   engine: embed, attack with the whole distortive suite, recognize after
   each attack.

   Run with: dune exec examples/java_pipeline.exe *)

open Pathmark

let () =
  let workload = Workloads.Jesslite.engine in
  let program = Workloads.Workload.vm_program workload in
  let input = workload.Workloads.Workload.input in
  let key = "examples-java-pipeline-key" in
  let fingerprint = Bignum.of_string "88962710306127702866241727433142015" in

  Printf.printf "workload: %s (%d bytes of bytecode)\n" workload.Workloads.Workload.name
    (Stackvm.Serialize.size_in_bytes program);

  let watermarked =
    watermark_vm ~key ~watermark:fingerprint ~bits:128 ~pieces:60 ~input program
  in
  Printf.printf "embedded 128-bit fingerprint in 60 pieces (%d bytes)\n\n"
    (Stackvm.Serialize.size_in_bytes watermarked);

  Printf.printf "%-26s %-10s %s\n" "attack" "semantics" "fingerprint";
  Printf.printf "%-26s %-10s %s\n" "(none)" "ok"
    (match recognize_vm ~key ~bits:128 ~input watermarked with
    | Some w when Bignum.equal w fingerprint -> "recovered"
    | _ -> "LOST");

  List.iter
    (fun (name, attack) ->
      let rng = Util.Prng.create 2024L in
      let attacked = attack rng watermarked in
      let ok =
        Stackvm.Verify.check attacked = Ok ()
        && Stackvm.Interp.equivalent_on watermarked attacked ~inputs:[ input ]
      in
      let mark =
        match recognize_vm ~key ~bits:128 ~input attacked with
        | Some w when Bignum.equal w fingerprint -> "recovered"
        | Some _ -> "WRONG VALUE"
        | None -> "lost"
      in
      Printf.printf "%-26s %-10s %s\n" name (if ok then "ok" else "BROKEN") mark)
    Vmattacks.Attacks.all;

  (* the class-encryption analog: instrumentation is blind, the VM is not *)
  let pkg = Vmattacks.Attacks.encrypt_package ~key:55L watermarked in
  Printf.printf "%-26s %-10s %s\n" "program-encryption" "ok"
    (match Vmattacks.Attacks.static_instrument pkg with
    | None -> "lost for instrumentation-based tracers"
    | Some _ -> "?");
  let trace = Vmattacks.Attacks.vm_trace_package pkg ~input in
  let params = Codec.Params.make ~passphrase:key ~watermark_bits:128 () in
  let report = Codec.Recombine.recover_from_bitstring params (Stackvm.Trace.bitstring trace) in
  Printf.printf "%-26s %-10s %s\n" "  ... via VM-level tracing" "ok"
    (match report.Codec.Recombine.value with
    | Some w when Bignum.equal w fingerprint -> "recovered"
    | _ -> "lost")
