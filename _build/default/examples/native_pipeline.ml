(* The native-track pipeline of Section 4, on the gzip-analog benchmark:
   branch-function embedding with tamper-proofing, then the five attacks of
   §5.2.2, demonstrating which break the program and how the two tracers
   differ under rerouting.

   Run with: dune exec examples/native_pipeline.exe *)

open Pathmark

let () =
  let workload = Workloads.Spec.find "gzip" in
  let program = Workloads.Workload.native_program workload in
  let training = List.hd workload.Workloads.Workload.alt_inputs in
  let reference = workload.Workloads.Workload.input in
  let fingerprint = Bignum.of_string "17361641481138401520" in

  let report = watermark_native ~watermark:fingerprint ~bits:64 ~training_input:training program in
  let wm = report.Nwm.Embed.binary in
  Printf.printf "workload: %s; %d-bit watermark, %d tamper-proofed jumps, %d -> %d bytes\n"
    workload.Workloads.Workload.name report.Nwm.Embed.bits report.Nwm.Embed.tamper_cells
    report.Nwm.Embed.bytes_before report.Nwm.Embed.bytes_after;

  (* extraction on the clean watermarked binary *)
  let extract ?kind bin =
    extract_native ?kind bin ~begin_addr:report.Nwm.Embed.begin_addr
      ~end_addr:report.Nwm.Embed.end_addr ~input:training
  in
  (match extract wm with
  | Some w -> Printf.printf "extracted fingerprint: %s\n\n" (Bignum.to_string w)
  | None -> failwith "extraction failed");

  let inputs = [ reference; training ] in
  let verdict name attacked =
    let breaks = Nattacks.Attacks.broken wm attacked ~inputs in
    Printf.printf "%-22s program %s\n" name (if breaks then "BREAKS" else "keeps working")
  in

  let rng () = Util.Prng.create 7L in
  verdict "noop-insertion" (Nattacks.Attacks.noop_insertion ~rate:0.05 (rng ()) wm);
  verdict "branch-inversion" (Nattacks.Attacks.branch_sense_inversion ~fraction:1.0 (rng ()) wm);
  verdict "double-watermark"
    (Nattacks.Attacks.double_watermark ~watermark:(Bignum.of_int 5555) ~bits:32
       ~training_input:training wm);
  verdict "bypass"
    (Nattacks.Attacks.bypass (rng ()) wm ~begin_addr:report.Nwm.Embed.begin_addr
       ~end_addr:report.Nwm.Embed.end_addr ~input:training);

  (* rerouting: the program survives, so compare the tracers *)
  let rerouted =
    Nattacks.Attacks.reroute (rng ()) wm ~begin_addr:report.Nwm.Embed.begin_addr
      ~end_addr:report.Nwm.Embed.end_addr ~input:training
  in
  verdict "reroute" rerouted;
  let describe = function
    | Some w when Bignum.equal w fingerprint -> "recovers the fingerprint"
    | Some _ -> "extracts a WRONG value"
    | None -> "extracts nothing"
  in
  Printf.printf "  simple tracer: %s\n" (describe (extract ~kind:Nwm.Extract.Simple rerouted));
  Printf.printf "  smart tracer:  %s\n" (describe (extract ~kind:Nwm.Extract.Smart rerouted))
