(* Fingerprinting in anger: ship three differently-marked copies of the
   same application to three customers; later, a pirated copy surfaces —
   obfuscated by whoever leaked it — and the fingerprint identifies the
   source (the scenario of the paper's introduction).

   Run with: dune exec examples/fingerprint_audit.exe *)

open Pathmark

let () =
  let workload = Workloads.Caffeine.suite in
  let program = Workloads.Workload.vm_program workload in
  let input = workload.Workloads.Workload.input in
  let key = "vendor escrow key" in

  let customers =
    [
      ("acme-corp", Bignum.of_string "1001001001001001001001001");
      ("globex", Bignum.of_string "2002002002002002002002002");
      ("initech", Bignum.of_string "3003003003003003003003003");
    ]
  in

  Printf.printf "shipping %d fingerprinted copies of %s\n" (List.length customers)
    workload.Workloads.Workload.name;
  let copies =
    List.map
      (fun (name, fp) ->
        (name, fp, watermark_vm ~key ~watermark:fp ~bits:128 ~pieces:50 ~input program))
      customers
  in

  (* one customer leaks a copy after running an obfuscator over it *)
  let _, _, leaked_copy = List.nth copies 1 in
  let rng = Util.Prng.create 31337L in
  let pirated =
    leaked_copy
    |> Vmattacks.Attacks.block_reorder rng
    |> Vmattacks.Attacks.branch_sense_invert ~fraction:0.6 rng
    |> Vmattacks.Attacks.nop_insertion ~rate:0.2 rng
    |> Vmattacks.Attacks.constant_split ~fraction:0.4 rng
  in
  Printf.printf "a pirated copy surfaced (obfuscated: reorder + invert + nops + const-split)\n";

  (* the audit: recognize and match against the escrow ledger *)
  match recognize_vm ~key ~bits:128 ~input pirated with
  | None -> Printf.printf "audit inconclusive: no fingerprint recovered\n"
  | Some fp -> begin
      Printf.printf "recovered fingerprint %s\n" (Bignum.to_string fp);
      match List.find_opt (fun (_, f, _) -> Bignum.equal f fp) copies with
      | Some (name, _, _) -> Printf.printf "the leak came from: %s\n" name
      | None -> Printf.printf "fingerprint does not match any customer\n"
    end
