(* The collusive attack and its defense (§5.1.2).

   A collusive attacker compares two differently-fingerprinted copies of
   the same program: whatever differs must be watermark code. The paper's
   answer: obfuscate each copy *before* watermarking, "producing a highly
   diverse program population", so any two copies differ far beyond the
   watermark code.

   Run with: dune exec examples/collusion.exe *)

open Pathmark

(* the collusive attacker diffs the copies function by function: any
   function whose code is identical in both copies is surely watermark-free,
   so the fewer identical functions, the less the diff localizes the mark *)
let identical_functions a b =
  let code (p : Stackvm.Program.t) =
    Array.to_list p.Stackvm.Program.funcs
    |> List.map (fun (f : Stackvm.Program.func) -> (f.Stackvm.Program.name, f.Stackvm.Program.code))
  in
  let cb = code b in
  let same =
    List.length
      (List.filter (fun (name, ca) -> List.assoc_opt name cb = Some ca) (code a))
  in
  (same, Array.length a.Stackvm.Program.funcs)

let () =
  let workload = Workloads.Jesslite.engine in
  let program = Workloads.Workload.vm_program workload in
  let input = workload.Workloads.Workload.input in
  let key = "collusion demo key" in
  let fp1 = Bignum.of_string "111111111111111111111111111" in
  let fp2 = Bignum.of_string "222222222222222222222222222" in
  let fingerprint fp prog = watermark_vm ~key ~watermark:fp ~bits:128 ~pieces:50 ~input prog in

  (* naive: fingerprint the same binary twice *)
  let copy1 = fingerprint fp1 program and copy2 = fingerprint fp2 program in
  let same_naive, total_funcs = identical_functions copy1 copy2 in
  Printf.printf
    "naive fingerprinting: %d of %d functions identical across copies\n\
    \  -> the diff pinpoints the watermark-bearing functions\n"
    same_naive total_funcs;

  (* defended: diversify each copy with seeded obfuscation first (the
     distortive transformations double as obfuscators) *)
  let diversify seed prog =
    let rng = Util.Prng.create seed in
    prog
    |> Vmattacks.Attacks.block_reorder rng
    |> Vmattacks.Attacks.constant_split ~fraction:0.5 rng
    |> Vmattacks.Attacks.branch_sense_invert ~fraction:0.5 rng
    |> Vmattacks.Attacks.local_permute rng
    |> Vmattacks.Attacks.dead_code_insertion ~count:6 rng
  in
  let copy1' = fingerprint fp1 (diversify 1001L program) in
  let copy2' = fingerprint fp2 (diversify 2002L program) in
  let same_div, _ = identical_functions copy1' copy2' in
  Printf.printf "diversified population: %d of %d functions identical across copies\n" same_div
    total_funcs;

  (* both defended copies still carry their fingerprints *)
  let check name fp copy =
    match recognize_vm ~key ~bits:128 ~input copy with
    | Some w when Bignum.equal w fp -> Printf.printf "%s: fingerprint intact\n" name
    | _ -> failwith (name ^ ": fingerprint lost")
  in
  check "naive copy 1" fp1 copy1;
  check "naive copy 2" fp2 copy2;
  check "diversified copy 1" fp1 copy1';
  check "diversified copy 2" fp2 copy2';
  Printf.printf
    "a collusive diff of the diversified copies implicates (almost) every\n\
     function, not just the watermark code (%d vs %d identical functions)\n"
    same_div same_naive
