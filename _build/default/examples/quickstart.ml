(* Quickstart: watermark a small program and recognize the mark.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {| // a little program: prints gcd(a, b) and a checksum loop
     func gcd(int a, int b) {
       while (b != 0) { int t = a % b; a = b; b = t; }
       return a;
     }
     func main() {
       int a = read();
       int b = read();
       print(gcd(a, b));
       int acc = 0;
       int i = 0;
       while (i < 40) { acc = acc + i * i; i = i + 1; }
       print(acc);
       return 0;
     } |}

let () =
  (* 1. compile the program for the stack VM *)
  let program = Pathmark.Minic.To_stackvm.compile_source source in

  (* 2. the watermarking secrets: a passphrase and an input sequence *)
  let key = "a passphrase only the owner knows" in
  let secret_input = [ 252; 105 ] in

  (* 3. embed a 64-bit fingerprint *)
  let fingerprint = Bignum.of_string "1311768467463790320" in
  let watermarked =
    Pathmark.watermark_vm ~key ~watermark:fingerprint ~bits:64 ~pieces:30 ~input:secret_input program
  in
  Printf.printf "original:    %d bytes\n" (Pathmark.Stackvm.Serialize.size_in_bytes program);
  Printf.printf "watermarked: %d bytes\n" (Pathmark.Stackvm.Serialize.size_in_bytes watermarked);

  (* 4. the program still behaves identically *)
  let run p = (Pathmark.Stackvm.Interp.run p ~input:secret_input).Pathmark.Stackvm.Interp.outputs in
  assert (run program = run watermarked);
  Printf.printf "behaviour unchanged: outputs %s\n"
    (String.concat ", " (List.map string_of_int (run watermarked)));

  (* 5. blind recognition: only the program + secrets are needed *)
  (match Pathmark.recognize_vm ~key ~bits:64 ~input:secret_input watermarked with
  | Some w -> Printf.printf "recovered fingerprint: %s\n" (Bignum.to_string w)
  | None -> failwith "recognition failed");

  (* 6. without the right key, nothing comes out *)
  match Pathmark.recognize_vm ~key:"wrong key" ~bits:64 ~input:secret_input watermarked with
  | Some w when Bignum.equal w fingerprint -> failwith "the wrong key must not recover the mark"
  | _ -> Printf.printf "wrong key recovers nothing, as intended\n"
