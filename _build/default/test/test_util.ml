(* Tests for the util library: PRNG determinism and bit-string behaviour. *)

open Util

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let c = Prng.split a in
  let x = Prng.next_int64 a and y = Prng.next_int64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_prng_int_bounds () =
  let rng = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let rng = Prng.create 2L in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_prng_weighted () =
  let rng = Prng.create 3L in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Prng.weighted_index rng [| 0.0; 1.0; 9.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight index never drawn" 0 counts.(0);
  Alcotest.(check bool) "heavy index dominates" true (counts.(2) > counts.(1))

let test_prng_shuffle_permutes () =
  let rng = Prng.create 4L in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_bits_roundtrip () =
  let s = "011010011101" in
  Alcotest.(check string) "roundtrip" s (Bitstring.to_string (Bitstring.of_string s))

let test_bits_append_int () =
  let t = Bitstring.create () in
  Bitstring.append_int t ~value:0b1011 ~width:4;
  (* least significant bit first: 1,1,0,1 *)
  Alcotest.(check string) "lsb first" "1101" (Bitstring.to_string t)

let test_bits_window () =
  let t = Bitstring.of_string "10110100" in
  (match Bitstring.window t ~pos:0 ~stride:1 ~width:4 with
  | Some v -> Alcotest.(check int) "stride 1" 0b1101 v
  | None -> Alcotest.fail "window failed");
  (match Bitstring.window t ~pos:0 ~stride:2 ~width:4 with
  | Some v ->
      (* bits at positions 0,2,4,6 = 1,1,0,0 -> value 0b0011 *)
      Alcotest.(check int) "stride 2" 0b0011 v
  | None -> Alcotest.fail "window failed");
  Alcotest.(check (option int)) "past end" None (Bitstring.window t ~pos:6 ~stride:1 ~width:4)

let test_bits_substring () =
  let haystack = Bitstring.of_string "0011010110" in
  Alcotest.(check bool) "present" true
    (Bitstring.is_substring ~needle:(Bitstring.of_string "1101") ~haystack);
  Alcotest.(check bool) "absent" false
    (Bitstring.is_substring ~needle:(Bitstring.of_string "11111") ~haystack)

let test_bits_sub_concat () =
  let t = Bitstring.of_string "110010" in
  let left = Bitstring.sub t ~pos:0 ~len:3 and right = Bitstring.sub t ~pos:3 ~len:3 in
  Alcotest.(check bool) "concat restores" true (Bitstring.equal t (Bitstring.concat left right))

let test_bits_find_int () =
  let t = Bitstring.of_string "000101100000" in
  (* value 0b1101 read lsb-first is bits 1,0,1,1 at position 3 *)
  match Bitstring.find_int t ~width:4 ~value:0b1101 ~stride:1 with
  | Some p -> Alcotest.(check int) "found position" 3 p
  | None -> Alcotest.fail "expected to find pattern"

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "spec drops extremes" 3.0 (Stats.spec_average [ 100.0; 3.0; 3.0; 3.0; 0.0 ]);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent ~before:2.0 ~after:3.0)

let qcheck_window_consistent =
  QCheck.Test.make ~name:"window stride-1 equals packed sub" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 8 80) bool) small_nat)
    (fun (bits, pos0) ->
      let t = Util.Bitstring.of_bool_list bits in
      let width = 6 in
      let pos = pos0 mod max 1 (List.length bits) in
      match Util.Bitstring.window t ~pos ~stride:1 ~width with
      | None -> pos + width > List.length bits
      | Some v ->
          let expected = ref 0 in
          List.iteri (fun i b -> if i >= pos && i < pos + width && b then expected := !expected lor (1 lsl (i - pos))) bits;
          v = !expected)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int_in bounds", `Quick, test_prng_int_in);
    ("prng weighted index", `Quick, test_prng_weighted);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("bitstring roundtrip", `Quick, test_bits_roundtrip);
    ("bitstring append_int", `Quick, test_bits_append_int);
    ("bitstring window", `Quick, test_bits_window);
    ("bitstring substring", `Quick, test_bits_substring);
    ("bitstring sub/concat", `Quick, test_bits_sub_concat);
    ("bitstring find_int", `Quick, test_bits_find_int);
    ("stats helpers", `Quick, test_stats);
    QCheck_alcotest.to_alcotest qcheck_window_consistent;
  ]

(* ---- additional stats and bitstring edges ---- *)

let test_stats_more () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "stddev constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean [])

let test_bits_empty () =
  let t = Bitstring.create () in
  Alcotest.(check int) "empty length" 0 (Bitstring.length t);
  Alcotest.(check string) "empty string" "" (Bitstring.to_string t);
  Alcotest.(check bool) "empty substring of empty" true
    (Bitstring.is_substring ~needle:(Bitstring.create ()) ~haystack:t);
  Alcotest.(check (option int)) "window on empty" None (Bitstring.window t ~pos:0 ~stride:1 ~width:4)

let test_bits_get_bounds () =
  let t = Bitstring.of_string "101" in
  (match Bitstring.get t 3 with
  | _ -> Alcotest.fail "expected out of range"
  | exception Invalid_argument _ -> ());
  match Bitstring.get t (-1) with
  | _ -> Alcotest.fail "expected out of range"
  | exception Invalid_argument _ -> ()

let test_bits_large_growth () =
  let t = Bitstring.create () in
  for i = 0 to 99_999 do
    Bitstring.append t (i mod 3 = 0)
  done;
  Alcotest.(check int) "length" 100_000 (Bitstring.length t);
  Alcotest.(check bool) "spot check" true (Bitstring.get t 99_999 = (99_999 mod 3 = 0))

let more_suite =
  [
    ("stats more", `Quick, test_stats_more);
    ("bitstring empty", `Quick, test_bits_empty);
    ("bitstring get bounds", `Quick, test_bits_get_bounds);
    ("bitstring large growth", `Quick, test_bits_large_growth);
  ]

let suite = suite @ more_suite
