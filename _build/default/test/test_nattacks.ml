(* Tests for the native attacks: the paper's Table of §5.2.2.
   No-op insertion, branch inversion, double watermarking and bypassing
   must BREAK a tamper-proofed binary; rerouting keeps it running, fools
   the simple tracer and is defeated by the smart tracer. *)

open Nativesim

let host_program = Test_nwm.host_program
let w64 = Bignum.of_string "13105294131850248109"

let big = Alcotest.testable Bignum.pp Bignum.equal

let report = lazy (Nwm.Embed.embed ~seed:77L ~watermark:w64 ~bits:64 ~training_input:[ 6 ] host_program)

let inputs = [ [ 6 ]; [ 3 ]; [ 10 ] ]

let extract ?kind bin =
  let r = Lazy.force report in
  Nwm.Extract.extract ?kind bin ~begin_addr:r.Nwm.Embed.begin_addr ~end_addr:r.Nwm.Embed.end_addr
    ~input:[ 6 ]

let test_noop_insertion_breaks () =
  let r = Lazy.force report in
  let rng = Util.Prng.create 3L in
  (* even a single inserted no-op moves addresses; sweep a few rates *)
  let attacked = Nattacks.Attacks.noop_insertion ~rate:0.05 rng r.Nwm.Embed.binary in
  Alcotest.(check bool) "program breaks" true
    (Nattacks.Attacks.broken r.Nwm.Embed.binary attacked ~inputs)

let test_noop_insertion_on_unwatermarked_is_safe () =
  (* sanity: the rewriter itself is sound — on a plain binary the same
     transformation preserves behaviour *)
  let bin = Asm.assemble host_program in
  let rng = Util.Prng.create 3L in
  let attacked = Nattacks.Attacks.noop_insertion ~rate:0.3 rng bin in
  Alcotest.(check bool) "plain binary unharmed" false (Nattacks.Attacks.broken bin attacked ~inputs)

let test_branch_inversion_breaks () =
  let r = Lazy.force report in
  let rng = Util.Prng.create 5L in
  let attacked = Nattacks.Attacks.branch_sense_inversion ~fraction:1.0 rng r.Nwm.Embed.binary in
  Alcotest.(check bool) "program breaks" true
    (Nattacks.Attacks.broken r.Nwm.Embed.binary attacked ~inputs)

let test_branch_inversion_on_unwatermarked_is_safe () =
  let bin = Asm.assemble host_program in
  let rng = Util.Prng.create 5L in
  let attacked = Nattacks.Attacks.branch_sense_inversion ~fraction:1.0 rng bin in
  Alcotest.(check bool) "plain binary unharmed" false (Nattacks.Attacks.broken bin attacked ~inputs)

let test_double_watermark_breaks () =
  let r = Lazy.force report in
  let attacked =
    Nattacks.Attacks.double_watermark ~seed:123L ~watermark:(Bignum.of_int 98765) ~bits:32
      ~training_input:[ 6 ] r.Nwm.Embed.binary
  in
  Alcotest.(check bool) "program breaks" true
    (Nattacks.Attacks.broken r.Nwm.Embed.binary attacked ~inputs)

let test_double_watermark_on_unwatermarked_is_safe () =
  (* watermarking a clean binary through the lift-relink path must produce
     a working program (it is just... watermarking) *)
  let bin = Asm.assemble host_program in
  let attacked =
    Nattacks.Attacks.double_watermark ~seed:123L ~watermark:(Bignum.of_int 98765) ~bits:32
      ~training_input:[ 6 ] bin
  in
  Alcotest.(check bool) "clean binary still works" false (Nattacks.Attacks.broken bin attacked ~inputs)

let test_bypass_breaks_tamper_proofed () =
  let r = Lazy.force report in
  let rng = Util.Prng.create 7L in
  let attacked =
    Nattacks.Attacks.bypass rng r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  in
  Alcotest.(check bool) "program breaks" true
    (Nattacks.Attacks.broken r.Nwm.Embed.binary attacked ~inputs)

let test_bypass_succeeds_without_tamper_proofing () =
  (* ablation: without §4.3 tamper-proofing, bypassing removes the mark
     and the program keeps working — which is why tamper-proofing exists *)
  let r =
    Nwm.Embed.embed ~seed:77L ~tamper_proof:false ~watermark:w64 ~bits:64 ~training_input:[ 6 ]
      host_program
  in
  let rng = Util.Prng.create 7L in
  let attacked =
    Nattacks.Attacks.bypass rng r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  in
  Alcotest.(check bool) "program keeps working" false
    (Nattacks.Attacks.broken r.Nwm.Embed.binary attacked ~inputs);
  (match
     Nwm.Extract.extract attacked ~begin_addr:r.Nwm.Embed.begin_addr ~end_addr:r.Nwm.Embed.end_addr
       ~input:[ 6 ]
   with
  | Error _ -> () (* mark gone *)
  | Ok ex ->
      Alcotest.(check bool) "mark destroyed" false
        (Bignum.equal (Nwm.Extract.watermark ex) w64))

let test_reroute_keeps_program_working () =
  let r = Lazy.force report in
  let rng = Util.Prng.create 9L in
  let attacked =
    Nattacks.Attacks.reroute rng r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  in
  Alcotest.(check bool) "program keeps working" false
    (Nattacks.Attacks.broken r.Nwm.Embed.binary attacked ~inputs)

let test_reroute_fools_simple_tracer () =
  let r = Lazy.force report in
  let rng = Util.Prng.create 9L in
  let attacked =
    Nattacks.Attacks.reroute rng r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  in
  match extract ~kind:Nwm.Extract.Simple attacked with
  | Error _ -> () (* extraction failing outright also counts as fooled *)
  | Ok ex ->
      Alcotest.(check bool) "simple tracer recovers wrong mark" false
        (Bignum.equal (Nwm.Extract.watermark ex) w64)

let test_reroute_defeated_by_smart_tracer () =
  let r = Lazy.force report in
  let rng = Util.Prng.create 9L in
  let attacked =
    Nattacks.Attacks.reroute rng r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  in
  match extract ~kind:Nwm.Extract.Smart attacked with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.check big "smart tracer recovers the mark" w64 (Nwm.Extract.watermark ex)

let suite =
  [
    ("no-op insertion breaks watermarked binary", `Quick, test_noop_insertion_breaks);
    ("no-op insertion safe on plain binary", `Quick, test_noop_insertion_on_unwatermarked_is_safe);
    ("branch inversion breaks watermarked binary", `Quick, test_branch_inversion_breaks);
    ("branch inversion safe on plain binary", `Quick, test_branch_inversion_on_unwatermarked_is_safe);
    ("double watermarking breaks watermarked binary", `Quick, test_double_watermark_breaks);
    ("lift-relink watermarking works on plain binary", `Quick, test_double_watermark_on_unwatermarked_is_safe);
    ("bypass breaks tamper-proofed binary", `Quick, test_bypass_breaks_tamper_proofed);
    ("bypass succeeds without tamper-proofing", `Quick, test_bypass_succeeds_without_tamper_proofing);
    ("reroute keeps program working", `Quick, test_reroute_keeps_program_working);
    ("reroute fools the simple tracer", `Quick, test_reroute_fools_simple_tracer);
    ("reroute defeated by the smart tracer", `Quick, test_reroute_defeated_by_smart_tracer);
  ]
