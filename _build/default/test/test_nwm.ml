(* Tests for the native branch-function watermarker: perfect hashing,
   slot permutation, embedding, simple/smart extraction, tamper-proofing. *)

open Nativesim

let big = Alcotest.testable Bignum.pp Bignum.equal

(* A host program with input-driven behaviour and a few cold direct jumps:
   reads n, prints the sum 1..n and a parity flag via separate paths. *)
let host_program =
  {
    Asm.text =
      Asm.[
        I (Insn.In 0); (* n *)
        I (Insn.Mov_imm (1, 0)); (* acc *)
        I (Insn.Mov_imm (2, 1)); (* i *)
        L "loop";
        I (Insn.Cmp (2, 0));
        Jcc (Insn.Gt, Lbl "after");
        I (Insn.Alu (Insn.Add, 1, 2));
        I (Insn.Alu_imm (Insn.Add, 2, 1));
        Jmp (Lbl "loop");
        L "after";
        I (Insn.Out 1);
        (* parity check with two cold paths joined by direct jumps *)
        I (Insn.Mov (3, 0));
        I (Insn.Alu_imm (Insn.And, 3, 1));
        I (Insn.Cmp_imm (3, 0));
        Jcc (Insn.Eq, Lbl "even");
        I (Insn.Mov_imm (4, 111));
        Jmp (Lbl "join");
        L "even";
        I (Insn.Mov_imm (4, 222));
        Jmp (Lbl "join");
        L "join";
        I (Insn.Out 4);
        Jmp (Lbl "fin");
        L "fin";
        I Insn.Halt;
      ];
    data = [];
  }

let training_input = [ 6 ]


let w64 = Bignum.of_string "13105294131850248109"

(* ---- slot permutation ---- *)

let test_bitperm_roundtrip () =
  let rng = Util.Prng.create 3L in
  for _ = 1 to 100 do
    let k = 1 + Util.Prng.int rng 80 in
    let w = List.init k (fun _ -> Util.Prng.bool rng) in
    let pi = Nwm.Bitperm.slots w in
    (* permutation of 0..k *)
    let sorted = List.sort compare (Array.to_list pi) in
    Alcotest.(check (list int)) "permutation" (List.init (k + 1) Fun.id) sorted;
    (* decoding the slot order recovers the bits *)
    let decoded = Nwm.Bitperm.bits_of_addresses (Array.to_list pi) in
    Alcotest.(check (list bool)) "roundtrip" w decoded
  done

(* ---- perfect hashing ---- *)

let test_phash_small () =
  let rng = Util.Prng.create 5L in
  let keys = [ 0x1005; 0x1032; 0x1107; 0x2222; 0x39ab ] in
  let h = Phash.build ~rng ~keys in
  Alcotest.(check bool) "perfect" true (Phash.is_perfect h ~keys)

let test_phash_many_keys () =
  let rng = Util.Prng.create 7L in
  (* 513 keys shaped like real call-site return addresses (10 bytes apart) *)
  let keys = List.init 513 (fun i -> 0x1000 + 7 + (10 * i)) in
  let h = Phash.build ~rng ~keys in
  Alcotest.(check bool) "perfect on 513 keys" true (Phash.is_perfect h ~keys);
  List.iter
    (fun key ->
      let v = Phash.eval h key in
      Alcotest.(check bool) "in range" true (v >= 0 && v < 1 lsl Phash.table_bits))
    keys

let qcheck_phash_random_keys =
  QCheck.Test.make ~name:"phash perfect on random key sets" ~count:50 QCheck.small_nat (fun seed ->
      let rng = Util.Prng.create (Int64.of_int (seed + 1)) in
      let n = 20 + Util.Prng.int rng 200 in
      let seen = Hashtbl.create 64 in
      let keys =
        List.filter_map
          (fun _ ->
            let k = 0x1000 + Util.Prng.int rng 200000 in
            if Hashtbl.mem seen k then None
            else begin
              Hashtbl.add seen k ();
              Some k
            end)
          (List.init n Fun.id)
      in
      let h = Phash.build ~rng ~keys in
      Phash.is_perfect h ~keys)

(* ---- embedding ---- *)

let embed ?(bits = 64) ?(tamper_proof = true) watermark =
  Nwm.Embed.embed ~seed:77L ~tamper_proof ~watermark ~bits ~training_input host_program

let test_embed_preserves_behaviour () =
  let base = Asm.assemble host_program in
  let r = embed w64 in
  List.iter
    (fun input ->
      let r0 = Machine.run base ~input in
      let r1 = Machine.run r.Nwm.Embed.binary ~input in
      Alcotest.(check bool)
        (Printf.sprintf "same behaviour on input %d" (List.hd input))
        true
        (Machine.outputs_equal r0 r1))
    [ [ 6 ]; [ 1 ]; [ 17 ]; [ 0 ] ]

let test_embed_has_tamper_cells () =
  let r = embed w64 in
  Alcotest.(check bool) "some jumps tamper-proofed" true (r.Nwm.Embed.tamper_cells >= 2)

let test_embed_size_overhead () =
  let r = embed w64 in
  Alcotest.(check bool) "size grew" true (r.Nwm.Embed.bytes_after > r.Nwm.Embed.bytes_before)

let test_extract_smart () =
  let r = embed w64 in
  match
    Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  with
  | Error e -> Alcotest.fail e
  | Ok ex ->
      Alcotest.(check int) "bit count" 64 (List.length ex.Nwm.Extract.bits);
      Alcotest.check big "watermark recovered" w64 (Nwm.Extract.watermark ex)

let test_extract_simple () =
  let r = embed w64 in
  match
    Nwm.Extract.extract ~kind:Nwm.Extract.Simple r.Nwm.Embed.binary
      ~begin_addr:r.Nwm.Embed.begin_addr ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.check big "simple tracer works on unattacked binary" w64 (Nwm.Extract.watermark ex)

let test_extract_identifies_branch_function () =
  let r = embed w64 in
  match
    Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.(check int) "f entry" r.Nwm.Embed.f_entry ex.Nwm.Extract.f_entry

let test_extract_call_sites_match () =
  let r = embed w64 in
  match
    Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.(check (list int)) "chain order" r.Nwm.Embed.call_slots ex.Nwm.Extract.call_sites

let test_various_widths () =
  List.iter
    (fun bits ->
      let rng = Util.Prng.create (Int64.of_int bits) in
      let w = Bignum.random_bits rng bits in
      let r = embed ~bits w in
      match
        Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
          ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
      with
      | Error e -> Alcotest.failf "%d bits: %s" bits e
      | Ok ex -> Alcotest.check big (Printf.sprintf "%d-bit watermark" bits) w (Nwm.Extract.watermark ex))
    [ 16; 128; 256; 512 ]

let test_embed_without_tamper_proofing () =
  let r = embed ~tamper_proof:false w64 in
  Alcotest.(check int) "no cells" 0 r.Nwm.Embed.tamper_cells;
  let r0 = Machine.run (Asm.assemble host_program) ~input:[ 6 ] in
  let r1 = Machine.run r.Nwm.Embed.binary ~input:[ 6 ] in
  Alcotest.(check bool) "behaviour preserved" true (Machine.outputs_equal r0 r1)

let test_fingerprints_differ () =
  let w2 = Bignum.of_string "4242424242424242424" in
  let r1 = embed w64 and r2 = embed w2 in
  let get (r : Nwm.Embed.report) =
    match
      Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
        ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
    with
    | Ok ex -> Nwm.Extract.watermark ex
    | Error e -> Alcotest.fail e
  in
  Alcotest.check big "copy 1" w64 (get r1);
  Alcotest.check big "copy 2" w2 (get r2)

let qcheck_embed_extract =
  QCheck.Test.make ~name:"embed/extract roundtrip on random marks" ~count:15 QCheck.small_nat
    (fun seed ->
      let rng = Util.Prng.create (Int64.of_int (seed + 31)) in
      let bits = 8 + Util.Prng.int rng 120 in
      let w = Bignum.random_bits rng bits in
      let r = Nwm.Embed.embed ~seed:(Int64.of_int seed) ~watermark:w ~bits ~training_input host_program in
      match
        Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
          ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
      with
      | Ok ex -> Bignum.equal (Nwm.Extract.watermark ex) w
      | Error _ -> false)

let suite =
  [
    ("bitperm roundtrip", `Quick, test_bitperm_roundtrip);
    ("phash small", `Quick, test_phash_small);
    ("phash 513 keys", `Quick, test_phash_many_keys);
    QCheck_alcotest.to_alcotest qcheck_phash_random_keys;
    ("embed preserves behaviour", `Quick, test_embed_preserves_behaviour);
    ("embed tamper-proofs jumps", `Quick, test_embed_has_tamper_cells);
    ("embed grows size", `Quick, test_embed_size_overhead);
    ("extract (smart tracer)", `Quick, test_extract_smart);
    ("extract (simple tracer)", `Quick, test_extract_simple);
    ("extract identifies branch function", `Quick, test_extract_identifies_branch_function);
    ("extract call sites in chain order", `Quick, test_extract_call_sites_match);
    ("16/128/256/512-bit watermarks", `Quick, test_various_widths);
    ("embedding without tamper-proofing", `Quick, test_embed_without_tamper_proofing);
    ("distinct fingerprints", `Quick, test_fingerprints_differ);
    QCheck_alcotest.to_alcotest qcheck_embed_extract;
  ]

(* ---- scattered placement (§4.2.2's construction over existing text) ---- *)

let test_scattered_placement_roundtrip () =
  (* jess-native has plenty of unconditional jumps to anchor on *)
  let w = Workloads.Jesslite.engine in
  let prog = Workloads.Workload.native_program w in
  let input = w.Workloads.Workload.input in
  let r =
    Nwm.Embed.embed ~seed:9L ~placement:Nwm.Embed.Scattered ~watermark:w64 ~bits:64
      ~training_input:input prog
  in
  (* behaviour preserved *)
  let r0 = Machine.run (Asm.assemble prog) ~input in
  let r1 = Machine.run r.Nwm.Embed.binary ~input in
  Alcotest.(check bool) "behaviour preserved" true (Machine.outputs_equal r0 r1);
  (* the mark extracts *)
  (match
     Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
       ~end_addr:r.Nwm.Embed.end_addr ~input
   with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.check big "scattered watermark" w64 (Nwm.Extract.watermark ex));
  (* the slots really are scattered: their address range spans most of the
     original text rather than a compact region *)
  let sorted = List.sort compare r.Nwm.Embed.call_slots in
  let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
  Alcotest.(check bool) "slots span the text" true
    (hi - lo > (Binary.text_end r.Nwm.Embed.binary - Layout.text_base) / 2)

let test_scattered_needs_enough_anchors () =
  (* the tiny host cannot host a 512-bit scattered watermark *)
  match
    Nwm.Embed.embed ~placement:Nwm.Embed.Scattered ~watermark:(Bignum.of_int 1) ~bits:512
      ~training_input:training_input host_program
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for too few anchors"

let test_scattered_survives_reroute_with_smart_tracer () =
  let w = Workloads.Jesslite.engine in
  let prog = Workloads.Workload.native_program w in
  let input = w.Workloads.Workload.input in
  let r =
    Nwm.Embed.embed ~seed:9L ~placement:Nwm.Embed.Scattered ~watermark:w64 ~bits:64
      ~training_input:input prog
  in
  let rng = Util.Prng.create 3L in
  let attacked =
    Nattacks.Attacks.reroute rng r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input
  in
  match
    Nwm.Extract.extract ~kind:Nwm.Extract.Smart attacked ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input
  with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.check big "smart tracer on scattered + reroute" w64 (Nwm.Extract.watermark ex)

let scattered_suite =
  [
    ("scattered placement roundtrip", `Quick, test_scattered_placement_roundtrip);
    ("scattered needs enough anchors", `Quick, test_scattered_needs_enough_anchors);
    ("scattered + reroute + smart tracer", `Quick, test_scattered_survives_reroute_with_smart_tracer);
  ]

let suite = suite @ scattered_suite

(* ---- decoy jump obfuscation (§4.2.1) ---- *)

let test_obfuscated_jumps_roundtrip () =
  let w = Workloads.Spec.find "parser" in
  let prog = Workloads.Workload.native_program w in
  let input = w.Workloads.Workload.input in
  let r =
    Nwm.Embed.embed ~seed:21L ~obfuscate_jumps:6 ~watermark:w64 ~bits:64 ~training_input:input prog
  in
  (* behaviour preserved with decoys active *)
  let r0 = Machine.run (Asm.assemble prog) ~input in
  let r1 = Machine.run r.Nwm.Embed.binary ~input in
  Alcotest.(check bool) "behaviour preserved" true (Machine.outputs_equal r0 r1);
  (* the watermark still extracts *)
  (match
     Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
       ~end_addr:r.Nwm.Embed.end_addr ~input
   with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.check big "watermark with decoys" w64 (Nwm.Extract.watermark ex));
  (* there really are more calls to the branch function than chain slots *)
  let f_entry = r.Nwm.Embed.f_entry in
  let calls_to_f =
    List.length
      (List.filter
         (fun (_, insn) -> match insn with Insn.Call t -> t = f_entry | _ -> false)
         (Disasm.disassemble r.Nwm.Embed.binary))
  in
  Alcotest.(check bool) "decoy calls present" true (calls_to_f > 65)

let suite =
  suite @ [ ("obfuscated decoy jumps", `Quick, test_obfuscated_jumps_roundtrip) ]

(* ---- extraction failure modes ---- *)

let test_extract_on_unwatermarked () =
  (* no branch function in a plain binary: extraction must report an error,
     not invent a mark *)
  let bin = Asm.assemble host_program in
  match
    Nwm.Extract.extract bin ~begin_addr:Nativesim.Layout.text_base
      ~end_addr:(Binary.text_end bin - 1) ~input:[ 6 ]
  with
  | Ok _ -> Alcotest.fail "extracted a mark from a clean binary"
  | Error _ -> ()

let test_extract_wrong_window () =
  (* a window that control never enters yields an empty-trace error *)
  let r = embed w64 in
  match
    Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:0x9999 ~end_addr:0x9999 ~input:[ 6 ]
  with
  | Ok _ -> Alcotest.fail "extracted from a never-entered window"
  | Error _ -> ()

let test_extract_zero_bit_mark () =
  (* bits = 1 is the smallest mark: two calls, one comparison *)
  let r =
    Nwm.Embed.embed ~seed:3L ~watermark:Bignum.one ~bits:1 ~training_input:training_input
      host_program
  in
  match
    Nwm.Extract.extract r.Nwm.Embed.binary ~begin_addr:r.Nwm.Embed.begin_addr
      ~end_addr:r.Nwm.Embed.end_addr ~input:[ 6 ]
  with
  | Error e -> Alcotest.fail e
  | Ok ex -> Alcotest.check big "1-bit mark" Bignum.one (Nwm.Extract.watermark ex)

let failure_suite =
  [
    ("extract on unwatermarked binary", `Quick, test_extract_on_unwatermarked);
    ("extract with wrong window", `Quick, test_extract_wrong_window);
    ("1-bit watermark", `Quick, test_extract_zero_bit_mark);
  ]

let suite = suite @ failure_suite
