(* Tests for the native machine: encode/decode, assembler, machine
   semantics, disassembler, rewriter relocation. *)

open Nativesim

let run ?fuel ?(input = []) ?entry prog = Machine.run ?fuel (Asm.assemble ?entry prog) ~input

let text text = { Asm.text; data = [] }

let expect_halted ?(expect = []) result =
  (match result.Machine.outcome with
  | Machine.Halted -> ()
  | Machine.Trapped { reason; addr } -> Alcotest.failf "trapped at 0x%x: %s" addr reason
  | Machine.Out_of_fuel -> Alcotest.fail "out of fuel");
  Alcotest.(check (list int)) "outputs" expect result.Machine.outputs

let test_mov_out () =
  expect_halted ~expect:[ 42 ]
    (run (text Asm.[ I (Insn.Mov_imm (0, 42)); I (Insn.Out 0); I Insn.Halt ]))

let test_alu () =
  let check op a b expected =
    expect_halted ~expect:[ expected ]
      (run
         (text
            Asm.[
              I (Insn.Mov_imm (0, a));
              I (Insn.Mov_imm (1, b));
              I (Insn.Alu (op, 0, 1));
              I (Insn.Out 0);
              I Insn.Halt;
            ]))
  in
  check Insn.Add 30 12 42;
  check Insn.Sub 30 12 18;
  check Insn.Mul 6 7 42;
  check Insn.Div 45 6 7;
  check Insn.Rem 45 6 3;
  check Insn.And 12 10 8;
  check Insn.Or 12 10 14;
  check Insn.Xor 12 10 6;
  check Insn.Shl 3 4 48;
  check Insn.Shr 16 2 4;
  check Insn.Sar (-16) 2 (-4)

let test_alu_imm_negative () =
  expect_halted ~expect:[ -5 ]
    (run (text Asm.[ I (Insn.Mov_imm (0, 5)); I (Insn.Alu_imm (Insn.Sub, 0, 10)); I (Insn.Out 0); I Insn.Halt ]))

let test_branching () =
  (* count down from 5, output number of iterations *)
  let prog =
    text
      Asm.[
        I (Insn.Mov_imm (0, 5));
        I (Insn.Mov_imm (1, 0));
        L "loop";
        I (Insn.Cmp_imm (0, 0));
        Jcc (Insn.Eq, Lbl "done");
        I (Insn.Alu_imm (Insn.Sub, 0, 1));
        I (Insn.Alu_imm (Insn.Add, 1, 1));
        Jmp (Lbl "loop");
        L "done";
        I (Insn.Out 1);
        I Insn.Halt;
      ]
  in
  expect_halted ~expect:[ 5 ] (run prog)

let test_all_conditions () =
  let check cc a b taken =
    let prog =
      text
        Asm.[
          I (Insn.Mov_imm (0, a));
          I (Insn.Mov_imm (1, b));
          I (Insn.Cmp (0, 1));
          Jcc (cc, Lbl "taken");
          I (Insn.Mov_imm (2, 0));
          Jmp (Lbl "out");
          L "taken";
          I (Insn.Mov_imm (2, 1));
          L "out";
          I (Insn.Out 2);
          I Insn.Halt;
        ]
    in
    expect_halted ~expect:[ (if taken then 1 else 0) ] (run prog)
  in
  check Insn.Eq 3 3 true;
  check Insn.Eq 3 4 false;
  check Insn.Ne 3 4 true;
  check Insn.Lt (-1) 0 true;
  check Insn.Ge 0 0 true;
  check Insn.Gt 1 0 true;
  check Insn.Gt 0 0 false;
  check Insn.Le 0 0 true

let test_call_ret_stack () =
  (* a function that doubles r0 *)
  let prog =
    text
      Asm.[
        I (Insn.Mov_imm (0, 21));
        Call (Lbl "double");
        I (Insn.Out 0);
        I Insn.Halt;
        L "double";
        I (Insn.Alu (Insn.Add, 0, 0));
        I Insn.Ret;
      ]
  in
  expect_halted ~expect:[ 42 ] (run prog)

let test_push_pop_flags () =
  let prog =
    text
      Asm.[
        I (Insn.Mov_imm (0, 1));
        I (Insn.Mov_imm (1, 2));
        I (Insn.Cmp (0, 1)); (* lt set *)
        I Insn.Pushf;
        I (Insn.Cmp (1, 0)); (* lt cleared *)
        I Insn.Popf;
        Jcc (Insn.Lt, Lbl "good");
        I (Insn.Mov_imm (2, 0));
        Jmp (Lbl "out");
        L "good";
        I (Insn.Mov_imm (2, 1));
        L "out";
        I (Insn.Out 2);
        I Insn.Halt;
      ]
  in
  expect_halted ~expect:[ 1 ] (run prog)

let test_memory_and_data () =
  let prog =
    {
      Asm.text =
        Asm.[
          Load_lbl (0, Lbl "cell");
          I (Insn.Alu_imm (Insn.Add, 0, 1));
          Store_lbl (Lbl "cell", 0);
          Load_lbl (1, Lbl "cell");
          I (Insn.Out 1);
          I Insn.Halt;
        ];
      data = Asm.[ Dlabel "cell"; Dword 99 ];
    }
  in
  expect_halted ~expect:[ 100 ] (run prog)

let test_indexed_load () =
  let prog =
    {
      Asm.text =
        Asm.[
          Mov_lbl (0, Lbl "table");
          I (Insn.Load (1, 0, 16)) (* third word *);
          I (Insn.Out 1);
          I Insn.Halt;
        ];
      data = Asm.[ Dlabel "table"; Dword 10; Dword 20; Dword 30 ];
    }
  in
  expect_halted ~expect:[ 30 ] (run prog)

let test_indirect_jump () =
  let prog =
    {
      Asm.text =
        Asm.[
          Mov_lbl (0, Lbl "target");
          Store_lbl (Lbl "cell", 0);
          Jmp_ind (Lbl "cell");
          I (Insn.Mov_imm (1, 0));
          I (Insn.Out 1);
          I Insn.Halt;
          L "target";
          I (Insn.Mov_imm (1, 7));
          I (Insn.Out 1);
          I Insn.Halt;
        ];
      data = Asm.[ Dlabel "cell"; Dword 0 ];
    }
  in
  expect_halted ~expect:[ 7 ] (run prog)

let test_in_out () =
  let prog = text Asm.[ I (Insn.In 0); I (Insn.In 1); I (Insn.Alu (Insn.Add, 0, 1)); I (Insn.Out 0); I Insn.Halt ] in
  expect_halted ~expect:[ 30 ] (run ~input:[ 10; 20 ] prog)

let test_traps () =
  let trap prog input =
    match (run ~input prog).Machine.outcome with
    | Machine.Trapped { reason; _ } -> reason
    | _ -> Alcotest.fail "expected trap"
  in
  let div0 =
    text Asm.[ I (Insn.Mov_imm (0, 1)); I (Insn.Mov_imm (1, 0)); I (Insn.Alu (Insn.Div, 0, 1)); I Insn.Halt ]
  in
  Alcotest.(check string) "div0" "division by zero" (trap div0 []);
  let wild = text Asm.[ Jmp (Abs 0x500000) ] in
  Alcotest.(check bool) "wild jump traps" true
    (String.length (trap wild []) > 0);
  let no_input = text Asm.[ I (Insn.In 0); I Insn.Halt ] in
  Alcotest.(check string) "input exhausted" "input exhausted" (trap no_input [])

let test_fuel () =
  let spin = text Asm.[ L "x"; Jmp (Lbl "x") ] in
  match (run ~fuel:1000 spin).Machine.outcome with
  | Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out of fuel"

let test_encode_decode_roundtrip () =
  let samples =
    Insn.[
      Halt; Nop; Ret; Pushf; Popf;
      Mov_imm (3, 123456789012345);
      Mov_imm (0, -42);
      Mov (1, 2);
      Load (0, 8, -16);
      Store (8, 32, 5);
      Load_abs (2, 0x100008);
      Store_abs (0x100010, 7);
      Alu (Add, 0, 1); Alu (Sar, 7, 6);
      Alu_imm (Xor, 4, 0x7FFF);
      Cmp (0, 1); Cmp_imm (5, -7);
      Jmp 0x2000; Jcc (Le, 0x1234); Jmp_ind 0x100000; Jmp_reg 3;
      Call 0x1500;
      Push 0; Pop 8; Out 1; In 2;
    ]
  in
  List.iter
    (fun insn ->
      let at = 0x1000 in
      let bytes = Insn.encode insn ~at in
      Alcotest.(check int) (Insn.to_string insn ^ " size") (Insn.size insn) (String.length bytes);
      let decoded, sz = Insn.decode (fun a -> Char.code bytes.[a - at]) ~at in
      Alcotest.(check int) "decoded size" (String.length bytes) sz;
      Alcotest.(check string) "roundtrip" (Insn.to_string insn) (Insn.to_string decoded))
    samples

let test_disassemble_whole_program () =
  let prog =
    text
      Asm.[
        I (Insn.Mov_imm (0, 5)); L "l"; I (Insn.Cmp_imm (0, 0)); Jcc (Insn.Eq, Lbl "d");
        I (Insn.Alu_imm (Insn.Sub, 0, 1)); Jmp (Lbl "l"); L "d"; I Insn.Halt;
      ]
  in
  let bin = Asm.assemble prog in
  let listing = Disasm.disassemble bin in
  Alcotest.(check int) "instruction count" 6 (List.length listing);
  (* addresses are consecutive by size *)
  let rec check = function
    | (a1, i1) :: ((a2, _) :: _ as rest) ->
        Alcotest.(check int) "addr chain" (a1 + Insn.size i1) a2;
        check rest
    | _ -> ()
  in
  check listing

let counting_binary =
  Asm.assemble
    (text
       Asm.[
         I (Insn.Mov_imm (0, 3));
         I (Insn.Mov_imm (1, 0));
         L "loop";
         I (Insn.Cmp_imm (0, 0));
         Jcc (Insn.Eq, Lbl "done");
         I (Insn.Alu_imm (Insn.Sub, 0, 1));
         I (Insn.Alu_imm (Insn.Add, 1, 7));
         Jmp (Lbl "loop");
         L "done";
         I (Insn.Out 1);
         I Insn.Halt;
       ])

let test_rewriter_nop_insertion_relocates () =
  let rng = Util.Prng.create 5L in
  let rewritten =
    Rewriter.transform counting_binary ~f:(fun _ insn ->
        if Util.Prng.bool rng then [ Insn.Nop; insn ] else [ insn ])
  in
  let r0 = Machine.run counting_binary ~input:[] in
  let r1 = Machine.run rewritten ~input:[] in
  Alcotest.(check bool) "behaviour preserved" true (Machine.outputs_equal r0 r1);
  Alcotest.(check bool) "text grew" true
    (String.length rewritten.Binary.text > String.length counting_binary.Binary.text)

let test_rewriter_preserves_symbols () =
  let rewritten = Rewriter.transform counting_binary ~f:(fun _ insn -> [ Insn.Nop; insn ]) in
  (* the "loop" symbol must still point at the Cmp instruction (after its Nop) *)
  let loop_addr = Binary.symbol rewritten "loop" in
  Alcotest.(check bool) "symbol relocated" true (loop_addr > Binary.symbol counting_binary "loop")

let test_patch_same_size () =
  (* patch the call in a call/halt program into a jmp: 5 bytes each *)
  let prog =
    text Asm.[ Call (Lbl "f"); I Insn.Halt; L "f"; I (Insn.Mov_imm (0, 9)); I (Insn.Out 0); I Insn.Halt ]
  in
  let bin = Asm.assemble prog in
  let f_addr = Binary.symbol bin "f" in
  let patched = Rewriter.patch_insn bin ~at:Layout.text_base (Insn.Jmp f_addr) in
  (* now the program jumps to f and halts there without returning *)
  expect_halted ~expect:[ 9 ] (Machine.run patched ~input:[]);
  Alcotest.(check int) "same total size" (Binary.size bin) (Binary.size patched)

let test_append_text () =
  let bin = counting_binary in
  let appended, start = Rewriter.append_text bin [ Insn.Nop; Insn.Halt ] in
  Alcotest.(check int) "start is old end" (Binary.text_end bin) start;
  let r0 = Machine.run bin ~input:[] and r1 = Machine.run appended ~input:[] in
  Alcotest.(check bool) "unreachable append preserves behaviour" true (Machine.outputs_equal r0 r1)

let test_profile_counts () =
  let p = Profile.run counting_binary ~input:[] in
  (* the loop body executes 3 times *)
  let loop_addr = Binary.symbol counting_binary "loop" in
  Alcotest.(check int) "loop head count" 4 (Profile.count p loop_addr);
  let cold = Profile.cold_instructions p counting_binary in
  Alcotest.(check bool) "some cold instructions" true (List.length cold >= 3)

let test_single_stepping () =
  let seen = ref [] in
  let observer st ~addr ~insn =
    ignore (Machine.reg st 0);
    seen := (addr, Insn.to_string insn) :: !seen
  in
  let r = Machine.run ~observer counting_binary ~input:[] in
  Alcotest.(check int) "one observation per step" r.Machine.steps (List.length !seen)

let qcheck_encode_roundtrip =
  QCheck.Test.make ~name:"random instruction encode/decode" ~count:500
    QCheck.(triple (int_bound 8) (int_bound 8) (int_range (-1000000) 1000000))
    (fun (r1, r2, imm) ->
      let candidates =
        Insn.[
          Mov_imm (r1, imm * 1000);
          Mov (r1, r2);
          Load (r1, r2, imm mod 0x10000);
          Store (r2, imm mod 0x10000, r1);
          Alu_imm (Add, r1, imm);
          Cmp_imm (r1, imm);
          Jcc (Ne, 0x1000 + abs imm mod 0x1000);
        ]
      in
      List.for_all
        (fun insn ->
          let at = 0x1000 in
          let bytes = Insn.encode insn ~at in
          let decoded, _ = Insn.decode (fun a -> Char.code bytes.[a - at]) ~at in
          Insn.to_string decoded = Insn.to_string insn)
        candidates)

let suite =
  [
    ("mov/out", `Quick, test_mov_out);
    ("alu ops", `Quick, test_alu);
    ("alu imm negative", `Quick, test_alu_imm_negative);
    ("branching loop", `Quick, test_branching);
    ("all conditions", `Quick, test_all_conditions);
    ("call/ret", `Quick, test_call_ret_stack);
    ("pushf/popf", `Quick, test_push_pop_flags);
    ("memory and data section", `Quick, test_memory_and_data);
    ("indexed load", `Quick, test_indexed_load);
    ("indirect jump through data", `Quick, test_indirect_jump);
    ("in/out", `Quick, test_in_out);
    ("traps", `Quick, test_traps);
    ("fuel", `Quick, test_fuel);
    ("encode/decode roundtrip", `Quick, test_encode_decode_roundtrip);
    ("disassemble program", `Quick, test_disassemble_whole_program);
    ("rewriter relocates", `Quick, test_rewriter_nop_insertion_relocates);
    ("rewriter preserves symbols", `Quick, test_rewriter_preserves_symbols);
    ("patch call->jmp same size", `Quick, test_patch_same_size);
    ("append text", `Quick, test_append_text);
    ("profile counts", `Quick, test_profile_counts);
    ("single stepping", `Quick, test_single_stepping);
    QCheck_alcotest.to_alcotest qcheck_encode_roundtrip;
  ]

(* ---- binary container format ---- *)

let test_binary_container_roundtrip () =
  let bin = counting_binary in
  let bin' = Binary.decode (Binary.encode bin) in
  Alcotest.(check string) "text" bin.Binary.text bin'.Binary.text;
  Alcotest.(check string) "data" bin.Binary.data bin'.Binary.data;
  Alcotest.(check int) "entry" bin.Binary.entry bin'.Binary.entry;
  Alcotest.(check bool) "symbols" true
    (List.sort compare bin.Binary.symbols = List.sort compare bin'.Binary.symbols)

let test_binary_container_rejects_garbage () =
  List.iter
    (fun s ->
      match Binary.decode s with
      | _ -> Alcotest.failf "accepted garbage %S" s
      | exception Failure _ -> ())
    [ ""; "NBI"; "XXXX\x00\x00\x00"; "NBIN" ]

(* ---- binary lifting (to_program) ---- *)

let test_lift_relink_identity_behaviour () =
  let bin = counting_binary in
  let relinked = Nativesim.Asm.assemble (Rewriter.to_program bin) in
  let r0 = Machine.run bin ~input:[] and r1 = Machine.run relinked ~input:[] in
  Alcotest.(check bool) "behaviour preserved by lift+relink" true (Machine.outputs_equal r0 r1)

let test_lift_preserves_instruction_count () =
  let bin = counting_binary in
  let lifted = Rewriter.to_program bin in
  let insns = List.filter (fun i -> Nativesim.Asm.item_size i > 0) lifted.Nativesim.Asm.text in
  Alcotest.(check int) "same instruction count" (List.length (Disasm.disassemble bin)) (List.length insns)

let container_suite =
  [
    ("binary container roundtrip", `Quick, test_binary_container_roundtrip);
    ("binary container rejects garbage", `Quick, test_binary_container_rejects_garbage);
    ("lift+relink preserves behaviour", `Quick, test_lift_relink_identity_behaviour);
    ("lift preserves instruction count", `Quick, test_lift_preserves_instruction_count);
  ]

let suite = suite @ container_suite
