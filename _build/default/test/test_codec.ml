(* Tests for the watermark piece codec: parameters, enumeration, encryption,
   recombination (Section 3.2-3.3 of the paper). *)

open Codec

let big = Alcotest.testable Bignum.pp Bignum.equal

let params_small = Params.make ~prime_bits:12 ~passphrase:"test-key" ~watermark_bits:64 ()
let params_768 = Params.make ~passphrase:"fig5-key" ~watermark_bits:768 ()

let watermark_of params seed bits =
  let rng = Util.Prng.create seed in
  let rec draw () =
    let w = Bignum.random_bits rng bits in
    if Params.fits params w then w else draw ()
  in
  draw ()

let test_params_deterministic () =
  let p1 = Params.make ~passphrase:"k" ~watermark_bits:128 () in
  let p2 = Params.make ~passphrase:"k" ~watermark_bits:128 () in
  Alcotest.(check (array int)) "same primes" p1.Params.primes p2.Params.primes

let test_params_capacity () =
  Alcotest.(check bool) "768-bit watermark fits" true (Params.max_watermark_bits params_768 >= 768);
  Alcotest.(check bool) "within capacity" true
    (Params.fits params_768 (Bignum.sub (Bignum.pow Bignum.two 768) Bignum.one));
  Alcotest.(check bool) "capacity excluded" false (Params.fits params_768 (Params.capacity params_768))

let test_params_primes_distinct () =
  let ps = params_768.Params.primes in
  let sorted = List.sort_uniq compare (Array.to_list ps) in
  Alcotest.(check int) "distinct" (Array.length ps) (List.length sorted);
  Array.iter (fun p -> Alcotest.(check bool) "prime" true (Numtheory.Ints.is_prime p)) ps

let test_statements_of_watermark () =
  let w = Bignum.of_int 123456789 in
  let stmts = Statement.all_of_watermark params_small w in
  Alcotest.(check int) "count = C(r,2)" (Params.pair_count params_small) (List.length stmts);
  List.iter
    (fun (s : Statement.t) ->
      let m = Statement.modulus params_small s in
      Alcotest.(check int) "residue matches watermark"
        (Bignum.to_int (Bignum.erem w (Bignum.of_int m)))
        s.Statement.x)
    stmts

let test_enumeration_roundtrip () =
  let w = watermark_of params_small 3L 60 in
  List.iter
    (fun s ->
      match Statement.unenumerate params_small (Statement.enumerate params_small s) with
      | None -> Alcotest.fail "unenumerate failed on valid statement"
      | Some s' -> Alcotest.(check bool) "roundtrip" true (Statement.equal s s'))
    (Statement.all_of_watermark params_small w)

let test_enumeration_injective () =
  (* Consecutive statements from different pairs must map to distinct codes. *)
  let w = watermark_of params_small 4L 60 in
  let codes = List.map (Statement.enumerate params_small) (Statement.all_of_watermark params_small w) in
  let sorted = List.sort_uniq compare codes in
  Alcotest.(check int) "injective" (List.length codes) (List.length sorted)

let test_unenumerate_garbage () =
  let total =
    Array.to_list params_small.Params.primes
    |> List.mapi (fun i p -> (i, p))
    |> List.concat_map (fun (i, p) ->
           Array.to_list params_small.Params.primes
           |> List.mapi (fun j q -> if j > i then p * q else 0))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check bool) "beyond range rejected" true (Statement.unenumerate params_small total = None);
  Alcotest.(check bool) "negative rejected" true (Statement.unenumerate params_small (-1) = None)

let test_encode_decode () =
  let w = watermark_of params_small 5L 60 in
  List.iter
    (fun s ->
      match Statement.decode params_small (Statement.encode params_small s) with
      | None -> Alcotest.fail "decode failed"
      | Some s' -> Alcotest.(check bool) "roundtrip through cipher" true (Statement.equal s s'))
    (Statement.all_of_watermark params_small w)

let test_statement_bits_width () =
  let w = watermark_of params_small 6L 60 in
  let s = List.hd (Statement.all_of_watermark params_small w) in
  Alcotest.(check int) "block width" params_small.Params.block_bits (List.length (Statement.bits params_small s))

let test_consistency_predicate () =
  let w = watermark_of params_small 7L 60 in
  let stmts = Array.of_list (Statement.all_of_watermark params_small w) in
  (* true statements are pairwise consistent *)
  Array.iteri
    (fun a sa ->
      Array.iteri
        (fun b sb -> if a < b then Alcotest.(check bool) "true stmts consistent" true (Statement.consistent params_small sa sb))
        stmts)
    stmts;
  (* corrupting a residue on a shared prime breaks consistency with some other *)
  let s0 = stmts.(0) in
  let bad = { s0 with Statement.x = (s0.Statement.x + 1) mod Statement.modulus params_small s0 } in
  let inconsistent_with_some = Array.exists (fun s -> not (Statement.consistent params_small bad s)) stmts in
  Alcotest.(check bool) "corrupted stmt conflicts" true inconsistent_with_some

let test_pieces_cover () =
  let w = watermark_of params_small 8L 60 in
  let rng = Util.Prng.create 1L in
  let count = Pieces.min_full_cover params_small in
  let pieces = Pieces.select params_small ~rng ~watermark:w ~count in
  Alcotest.(check int) "count honoured" count (List.length pieces);
  let distinct = List.sort_uniq Statement.compare pieces in
  Alcotest.(check int) "one full round covers all pairs" count (List.length distinct)

let test_recover_all_pieces () =
  let w = watermark_of params_small 9L 60 in
  let stmts = Statement.all_of_watermark params_small w in
  match Recombine.recover_value params_small stmts with
  | None -> Alcotest.fail "recovery with all pieces must succeed"
  | Some w' -> Alcotest.check big "recovered watermark" w w'

let test_recover_spanning_subset () =
  (* A spanning subset of edges (a Hamiltonian-ish path over prime indices)
     is enough to pin the watermark. *)
  let w = watermark_of params_small 10L 60 in
  let r = Params.r params_small in
  let path = List.init (r - 1) (fun i -> Statement.of_watermark params_small w ~pair:(i, i + 1)) in
  match Recombine.recover_value params_small path with
  | None -> Alcotest.fail "spanning path must suffice"
  | Some w' -> Alcotest.check big "recovered" w w'

let test_recover_fails_without_coverage () =
  let w = watermark_of params_small 11L 60 in
  (* Omit every statement touching prime 0: recovery must refuse. *)
  let stmts =
    List.filter (fun (s : Statement.t) -> s.Statement.i <> 0 && s.Statement.j <> 0)
      (Statement.all_of_watermark params_small w)
  in
  Alcotest.(check bool) "uncovered prime detected" true (Recombine.recover_value params_small stmts = None)

let test_recover_with_garbage () =
  (* True pieces (duplicated) plus uniformly random garbage statements:
     the vote + graph phases must reject the garbage. *)
  let w = watermark_of params_small 12L 60 in
  let rng = Util.Prng.create 13L in
  let true_pieces =
    List.concat_map (fun s -> [ s; s; s ]) (Statement.all_of_watermark params_small w)
  in
  let garbage =
    List.init 200 (fun _ ->
        let r = Params.r params_small in
        let i = Util.Prng.int rng (r - 1) in
        let j = Util.Prng.int_in rng (i + 1) (r - 1) in
        let m = params_small.Params.primes.(i) * params_small.Params.primes.(j) in
        { Statement.i; j; x = Util.Prng.int rng m })
  in
  match Recombine.recover_value params_small (true_pieces @ garbage) with
  | None -> Alcotest.fail "recovery must survive garbage"
  | Some w' -> Alcotest.check big "recovered despite garbage" w w'

let test_recover_from_bitstring_contiguous () =
  (* Serialize a few encoded pieces into a bit-string with random filler
     between them; recover_from_bitstring must find the watermark. *)
  let w = watermark_of params_small 14L 60 in
  let rng = Util.Prng.create 15L in
  let bits = Util.Bitstring.create () in
  let add_filler n = for _ = 1 to n do Util.Bitstring.append bits (Util.Prng.bool rng) done in
  add_filler 40;
  List.iter
    (fun s ->
      List.iter (Util.Bitstring.append bits) (Statement.bits params_small s);
      add_filler (Util.Prng.int_in rng 5 30))
    (Statement.all_of_watermark params_small w);
  let report = Recombine.recover_from_bitstring params_small bits in
  (match report.Recombine.value with
  | None -> Alcotest.fail "bitstring recovery failed"
  | Some w' -> Alcotest.check big "recovered from bitstring" w w');
  Alcotest.(check bool) "coverage reported" true report.Recombine.covered

let test_recover_from_bitstring_stride2 () =
  (* Pieces whose payload bits interleave with a constant loop-control bit
     (the loop code generator of §3.2.1) are found at stride 2. *)
  let w = watermark_of params_small 16L 60 in
  let rng = Util.Prng.create 17L in
  let bits = Util.Bitstring.create () in
  let add_filler n = for _ = 1 to n do Util.Bitstring.append bits (Util.Prng.bool rng) done in
  add_filler 30;
  List.iter
    (fun s ->
      List.iter
        (fun payload ->
          Util.Bitstring.append bits false (* loop-control branch bit *);
          Util.Bitstring.append bits payload)
        (Statement.bits params_small s);
      add_filler (Util.Prng.int_in rng 5 25))
    (Statement.all_of_watermark params_small w);
  match (Recombine.recover_from_bitstring params_small bits).Recombine.value with
  | None -> Alcotest.fail "stride-2 recovery failed"
  | Some w' -> Alcotest.check big "recovered interleaved pieces" w w'

let test_recover_768_bit () =
  (* The Figure 5 configuration: a 768-bit watermark over 32 primes. *)
  let w = watermark_of params_768 18L 768 in
  let stmts = Statement.all_of_watermark params_768 w in
  Alcotest.(check bool) "hundreds of pieces" true (List.length stmts >= 400);
  match Recombine.recover_value params_768 stmts with
  | None -> Alcotest.fail "768-bit recovery failed"
  | Some w' -> Alcotest.check big "recovered 768-bit watermark" w w'

let test_recover_768_after_deletion () =
  (* Delete 70% of the pieces at random; with ~496 pieces the survivors
     almost surely still cover all 32 primes. *)
  let w = watermark_of params_768 19L 768 in
  let rng = Util.Prng.create 20L in
  let survivors =
    List.filter (fun _ -> Util.Prng.float rng 1.0 > 0.7) (Statement.all_of_watermark params_768 w)
  in
  match Recombine.recover_value params_768 survivors with
  | None -> Alcotest.fail "recovery after 70% deletion failed (unlucky coverage?)"
  | Some w' -> Alcotest.check big "recovered after deletion" w w'

let test_recover_with_corrupted_pieces () =
  (* Corrupt a minority of pieces; vote + graph phase must reject them. *)
  let w = watermark_of params_small 21L 60 in
  let rng = Util.Prng.create 22L in
  let pieces =
    List.concat_map (fun s -> [ s; s; s ])
      (Statement.all_of_watermark params_small w)
  in
  let corrupted =
    List.init 30 (fun _ ->
        let all = Array.of_list (Statement.all_of_watermark params_small w) in
        let s = Util.Prng.pick rng all in
        let m = Statement.modulus params_small s in
        { s with Statement.x = (s.Statement.x + 1 + Util.Prng.int rng (m - 1)) mod m })
  in
  match Recombine.recover_value params_small (pieces @ corrupted) with
  | None -> Alcotest.fail "recovery must survive corrupted minority"
  | Some w' -> Alcotest.check big "recovered despite corruption" w w'

let qcheck_encode_decode =
  QCheck.Test.make ~name:"statement encode/decode roundtrip" ~count:300 QCheck.small_nat (fun seed ->
      let w = watermark_of params_small (Int64.of_int (seed + 1000)) 60 in
      let stmts = Statement.all_of_watermark params_small w in
      List.for_all
        (fun s ->
          match Statement.decode params_small (Statement.encode params_small s) with
          | Some s' -> Statement.equal s s'
          | None -> false)
        stmts)

let qcheck_recover_roundtrip =
  QCheck.Test.make ~name:"recover finds any representable watermark" ~count:50 QCheck.small_nat
    (fun seed ->
      let w = watermark_of params_small (Int64.of_int (seed + 5000)) 55 in
      match Recombine.recover_value params_small (Statement.all_of_watermark params_small w) with
      | Some w' -> Bignum.equal w w'
      | None -> false)

let suite =
  [
    ("params deterministic from passphrase", `Quick, test_params_deterministic);
    ("params capacity", `Quick, test_params_capacity);
    ("params primes distinct", `Quick, test_params_primes_distinct);
    ("statements of watermark", `Quick, test_statements_of_watermark);
    ("enumeration roundtrip", `Quick, test_enumeration_roundtrip);
    ("enumeration injective", `Quick, test_enumeration_injective);
    ("unenumerate rejects garbage", `Quick, test_unenumerate_garbage);
    ("encode/decode through cipher", `Quick, test_encode_decode);
    ("statement bits width", `Quick, test_statement_bits_width);
    ("consistency predicate", `Quick, test_consistency_predicate);
    ("pieces cover all pairs", `Quick, test_pieces_cover);
    ("recover with all pieces", `Quick, test_recover_all_pieces);
    ("recover from spanning subset", `Quick, test_recover_spanning_subset);
    ("recover refuses uncovered prime", `Quick, test_recover_fails_without_coverage);
    ("recover with garbage", `Quick, test_recover_with_garbage);
    ("recover from bitstring", `Quick, test_recover_from_bitstring_contiguous);
    ("recover stride-2 pieces", `Quick, test_recover_from_bitstring_stride2);
    ("recover 768-bit watermark", `Quick, test_recover_768_bit);
    ("recover 768-bit after deletion", `Quick, test_recover_768_after_deletion);
    ("recover with corrupted pieces", `Quick, test_recover_with_corrupted_pieces);
    QCheck_alcotest.to_alcotest qcheck_encode_decode;
    QCheck_alcotest.to_alcotest qcheck_recover_roundtrip;
  ]

(* ---- parameter and boundary edge cases ---- *)

let test_params_rejects_bad_args () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero watermark bits" true
    (invalid (fun () -> Params.make ~passphrase:"x" ~watermark_bits:0 ()));
  Alcotest.(check bool) "tiny prime bits" true
    (invalid (fun () -> Params.make ~prime_bits:4 ~passphrase:"x" ~watermark_bits:64 ()));
  (* an enumeration too large for the block must be rejected *)
  Alcotest.(check bool) "overflow rejected" true
    (invalid (fun () -> Params.make ~prime_bits:30 ~passphrase:"x" ~watermark_bits:4000 ()))

let test_statement_rejects_bad_pairs () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  let w = Bignum.of_int 5 in
  Alcotest.(check bool) "i = j" true
    (invalid (fun () -> Statement.of_watermark params_small w ~pair:(2, 2)));
  Alcotest.(check bool) "j out of range" true
    (invalid (fun () -> Statement.of_watermark params_small w ~pair:(0, 99)));
  Alcotest.(check bool) "watermark too large" true
    (invalid (fun () -> Statement.of_watermark params_small (Params.capacity params_small) ~pair:(0, 1)))

let test_recover_empty_and_tiny () =
  Alcotest.(check bool) "no statements -> none" true (Recombine.recover_value params_small [] = None);
  (* one statement cannot cover all primes *)
  let w = watermark_of params_small 44L 40 in
  let s = Statement.of_watermark params_small w ~pair:(0, 1) in
  Alcotest.(check bool) "single statement insufficient" true
    (Recombine.recover_value params_small [ s ] = None)

(* failure injection: flip random bits in an encoded trace and check the
   error correction degrades gracefully rather than returning wrong marks *)
let test_bit_corruption_never_wrong () =
  let w = watermark_of params_small 71L 55 in
  let rng = Util.Prng.create 72L in
  let make_bits () =
    let bits = Util.Bitstring.create () in
    List.iter
      (fun s ->
        List.iter (Util.Bitstring.append bits) (Statement.bits params_small s);
        for _ = 1 to 10 do
          Util.Bitstring.append bits (Util.Prng.bool rng)
        done)
      (Statement.all_of_watermark params_small w);
    bits
  in
  List.iter
    (fun corruption ->
      let bits = make_bits () in
      let n = Util.Bitstring.length bits in
      let flips = int_of_float (corruption *. float_of_int n) in
      let corrupted = Util.Bitstring.to_string bits |> Bytes.of_string in
      for _ = 1 to flips do
        let i = Util.Prng.int rng n in
        Bytes.set corrupted i (if Bytes.get corrupted i = '0' then '1' else '0')
      done;
      let report =
        Recombine.recover_from_bitstring params_small
          (Util.Bitstring.of_string (Bytes.to_string corrupted))
      in
      match report.Recombine.value with
      | Some v ->
          (* whatever survives must be the true mark, never a wrong one *)
          Alcotest.(check bool)
            (Printf.sprintf "no wrong mark at %.0f%% corruption" (100.0 *. corruption))
            true (Bignum.equal v w)
      | None -> () (* losing the mark under heavy corruption is acceptable *))
    [ 0.0; 0.005; 0.02; 0.05; 0.15; 0.4 ]

let edge_suite =
  [
    ("params rejects bad args", `Quick, test_params_rejects_bad_args);
    ("statement rejects bad pairs", `Quick, test_statement_rejects_bad_pairs);
    ("recover on empty/tiny input", `Quick, test_recover_empty_and_tiny);
    ("bit corruption never yields a wrong mark", `Quick, test_bit_corruption_never_wrong);
  ]

let suite = suite @ edge_suite
