(* Tests for the Feistel block cipher. *)

let test_roundtrip_default () =
  let c = Crypto.Feistel.create ~key:0xDEADBEEFL () in
  List.iter
    (fun v -> Alcotest.(check int) "decrypt . encrypt = id" v (Crypto.Feistel.decrypt c (Crypto.Feistel.encrypt c v)))
    [ 0; 1; 42; (1 lsl 61) - 1; 1 lsl 60; 123456789123456789 ]

let test_roundtrip_small_block () =
  let c = Crypto.Feistel.create ~block_bits:16 ~key:7L () in
  for v = 0 to 65535 do
    if Crypto.Feistel.decrypt c (Crypto.Feistel.encrypt c v) <> v then
      Alcotest.failf "roundtrip failed at %d" v
  done

let test_bijective_small_block () =
  let c = Crypto.Feistel.create ~block_bits:12 ~key:99L () in
  let seen = Array.make 4096 false in
  for v = 0 to 4095 do
    let e = Crypto.Feistel.encrypt c v in
    Alcotest.(check bool) "in range" true (e >= 0 && e < 4096);
    if seen.(e) then Alcotest.failf "collision at %d" v;
    seen.(e) <- true
  done

let test_key_sensitivity () =
  let c1 = Crypto.Feistel.create ~key:1L () and c2 = Crypto.Feistel.create ~key:2L () in
  let differs = ref 0 in
  for v = 0 to 99 do
    if Crypto.Feistel.encrypt c1 v <> Crypto.Feistel.encrypt c2 v then incr differs
  done;
  Alcotest.(check bool) "different keys give different ciphertexts" true (!differs > 90)

let test_diffusion () =
  (* Flipping one plaintext bit should flip many ciphertext bits on average. *)
  let c = Crypto.Feistel.create ~key:123L () in
  let total = ref 0 in
  let samples = 200 in
  let rng = Util.Prng.create 17L in
  for _ = 1 to samples do
    let v = Util.Prng.bits rng 62 in
    let bit = Util.Prng.int rng 62 in
    let d = Crypto.Feistel.encrypt c v lxor Crypto.Feistel.encrypt c (v lxor (1 lsl bit)) in
    let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
    total := !total + popcount d
  done;
  let avg = float_of_int !total /. float_of_int samples in
  Alcotest.(check bool) (Printf.sprintf "avalanche avg %.1f bits" avg) true (avg > 20.0 && avg < 42.0)

let test_passphrase_deterministic () =
  let c1 = Crypto.Feistel.of_passphrase "secret input" in
  let c2 = Crypto.Feistel.of_passphrase "secret input" in
  let c3 = Crypto.Feistel.of_passphrase "secret inpux" in
  Alcotest.(check int) "same passphrase" (Crypto.Feistel.encrypt c1 5) (Crypto.Feistel.encrypt c2 5);
  Alcotest.(check bool) "different passphrase" true
    (Crypto.Feistel.encrypt c1 5 <> Crypto.Feistel.encrypt c3 5)

let test_invalid_params () =
  let expect_invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "odd block" true (expect_invalid (fun () -> Crypto.Feistel.create ~block_bits:13 ~key:1L ()));
  Alcotest.(check bool) "too wide" true (expect_invalid (fun () -> Crypto.Feistel.create ~block_bits:64 ~key:1L ()));
  let c = Crypto.Feistel.create ~block_bits:16 ~key:1L () in
  Alcotest.(check bool) "value out of range" true (expect_invalid (fun () -> Crypto.Feistel.encrypt c 65536));
  Alcotest.(check bool) "negative value" true (expect_invalid (fun () -> Crypto.Feistel.encrypt c (-1)))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"encrypt/decrypt roundtrip on random values" ~count:1000
    QCheck.(pair (int_bound ((1 lsl 30) - 1)) (int_bound ((1 lsl 30) - 1)))
    (fun (hi, lo) ->
      let v = (hi lsl 30) lor lo in
      let c = Crypto.Feistel.create ~key:0x5EEDL () in
      Crypto.Feistel.decrypt c (Crypto.Feistel.encrypt c v) = v)

let suite =
  [
    ("roundtrip default block", `Quick, test_roundtrip_default);
    ("roundtrip 16-bit block exhaustive", `Quick, test_roundtrip_small_block);
    ("bijective on 12-bit block", `Quick, test_bijective_small_block);
    ("key sensitivity", `Quick, test_key_sensitivity);
    ("diffusion/avalanche", `Quick, test_diffusion);
    ("passphrase derivation", `Quick, test_passphrase_deterministic);
    ("invalid parameters", `Quick, test_invalid_params);
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
