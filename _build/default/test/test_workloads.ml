(* Tests for the benchmark workloads: every workload must compile to both
   substrates and reproduce the MiniC reference interpreter's outputs on
   its standard and alternative inputs. *)

let all_workloads =
  (Workloads.Caffeine.suite :: Workloads.Caffeine.kernels)
  @ [ Workloads.Jesslite.engine; Workloads.Miniinterp.interpreter ]
  @ Workloads.Spec.all

let check_one (w : Workloads.Workload.t) input =
  let expect = Workloads.Workload.expected_outputs w input in
  let vm = Stackvm.Interp.run (Workloads.Workload.vm_program w) ~input in
  Alcotest.(check (list int)) (w.Workloads.Workload.name ^ " vm outputs") expect vm.Stackvm.Interp.outputs;
  (match vm.Stackvm.Interp.outcome with
  | Stackvm.Interp.Finished _ -> ()
  | Stackvm.Interp.Trapped { reason; _ } -> Alcotest.failf "%s vm trapped: %s" w.Workloads.Workload.name reason
  | Stackvm.Interp.Out_of_fuel -> Alcotest.failf "%s vm out of fuel" w.Workloads.Workload.name);
  let native = Nativesim.Machine.run (Workloads.Workload.native_binary w) ~input in
  Alcotest.(check (list int)) (w.Workloads.Workload.name ^ " native outputs") expect native.Nativesim.Machine.outputs;
  match native.Nativesim.Machine.outcome with
  | Nativesim.Machine.Halted -> ()
  | Nativesim.Machine.Trapped { reason; addr } ->
      Alcotest.failf "%s native trapped at 0x%x: %s" w.Workloads.Workload.name addr reason
  | Nativesim.Machine.Out_of_fuel -> Alcotest.failf "%s native out of fuel" w.Workloads.Workload.name

let test_workload (w : Workloads.Workload.t) () =
  check_one w w.Workloads.Workload.input;
  List.iter (check_one w) w.Workloads.Workload.alt_inputs

let test_spec_has_ten () = Alcotest.(check int) "ten SPEC analogs" 10 (List.length Workloads.Spec.all)

let test_workloads_produce_output () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let out = Workloads.Workload.expected_outputs w w.Workloads.Workload.input in
      Alcotest.(check bool) (w.Workloads.Workload.name ^ " prints something") true (out <> []))
    all_workloads

let test_jess_is_larger_and_colder_than_caffeine () =
  (* the Figure 8(a) contrast: Jess has much more code than CaffeineMark
     and a lower fraction of hot instructions *)
  let size w = Stackvm.Serialize.size_in_bytes (Workloads.Workload.vm_program w) in
  let caffeine = Workloads.Caffeine.suite and jess = Workloads.Jesslite.engine in
  Alcotest.(check bool) "jess bigger" true (size jess > 2 * size caffeine);
  let hot_fraction w =
    let prog = Workloads.Workload.vm_program w in
    let trace = Stackvm.Trace.capture ~want_snapshots:false prog ~input:w.Workloads.Workload.input in
    let hot =
      Hashtbl.fold (fun _ c acc -> if c > 16 then acc + 1 else acc) trace.Stackvm.Trace.block_counts 0
    in
    let total = max 1 (Hashtbl.length trace.Stackvm.Trace.block_counts) in
    float_of_int hot /. float_of_int total
  in
  Alcotest.(check bool) "caffeine hotter" true (hot_fraction caffeine > hot_fraction jess)

let test_spec_trace_sizes_reasonable () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let r = Nativesim.Machine.run (Workloads.Workload.native_binary w) ~input:w.Workloads.Workload.input in
      Alcotest.(check bool)
        (Printf.sprintf "%s runs %d steps" w.Workloads.Workload.name r.Nativesim.Machine.steps)
        true
        (r.Nativesim.Machine.steps > 5_000 && r.Nativesim.Machine.steps < 40_000_000))
    Workloads.Spec.all

let suite =
  List.map
    (fun (w : Workloads.Workload.t) ->
      (w.Workloads.Workload.name ^ " differential", `Quick, test_workload w))
    all_workloads
  @ [
      ("ten SPEC analogs", `Quick, test_spec_has_ten);
      ("workloads produce output", `Quick, test_workloads_produce_output);
      ("jess larger and colder than caffeine", `Quick, test_jess_is_larger_and_colder_than_caffeine);
      ("spec trace sizes reasonable", `Quick, test_spec_trace_sizes_reasonable);
    ]
