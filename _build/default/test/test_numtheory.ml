(* Tests for number theory: primes, generalized CRT, recovery probability. *)

open Numtheory

let big = Alcotest.testable Bignum.pp Bignum.equal

let test_gcd_egcd () =
  Alcotest.(check int) "gcd" 6 (Ints.gcd 54 24);
  Alcotest.(check int) "gcd neg" 6 (Ints.gcd (-54) 24);
  let g, s, t = Ints.egcd 240 46 in
  Alcotest.(check int) "egcd g" 2 g;
  Alcotest.(check int) "bezout" g ((s * 240) + (t * 46))

let test_is_prime () =
  let primes = [ 2; 3; 5; 7; 11; 101; 104729; 1073741789 ] in
  let composites = [ 0; 1; 4; 9; 100; 104730; 1073741787 ] in
  List.iter (fun p -> Alcotest.(check bool) (string_of_int p) true (Ints.is_prime p)) primes;
  List.iter (fun c -> Alcotest.(check bool) (string_of_int c) false (Ints.is_prime c)) composites

let test_next_prime () =
  Alcotest.(check int) "after 10" 11 (Ints.next_prime 10);
  Alcotest.(check int) "after 11" 13 (Ints.next_prime 11);
  Alcotest.(check int) "after 0" 2 (Ints.next_prime 0)

let test_primes_with_bits () =
  let ps = Ints.primes_with_bits ~bits:8 ~count:5 in
  Alcotest.(check (list int)) "first 8-bit primes" [ 131; 137; 139; 149; 151 ] ps

let test_coprime_moduli () =
  let rng = Util.Prng.create 5L in
  let ps = Ints.coprime_moduli ~rng ~bits:20 ~count:12 in
  Alcotest.(check int) "count" 12 (List.length ps);
  List.iter
    (fun p ->
      Alcotest.(check bool) "prime" true (Ints.is_prime p);
      Alcotest.(check bool) "20 bits" true (p >= 1 lsl 19 && p < 1 lsl 20))
    ps;
  (* pairwise distinct hence pairwise coprime for primes *)
  let sorted = List.sort_uniq compare ps in
  Alcotest.(check int) "distinct" 12 (List.length sorted)

let test_crt_pair () =
  (* x = 2 mod 3, x = 3 mod 5  ->  x = 8 mod 15 *)
  let c1 = Gcrt.make_int ~residue:2 ~modulus:3 and c2 = Gcrt.make_int ~residue:3 ~modulus:5 in
  match Gcrt.merge c1 c2 with
  | None -> Alcotest.fail "coprime congruences must merge"
  | Some m ->
      Alcotest.check big "residue" (Bignum.of_int 8) m.Gcrt.residue;
      Alcotest.check big "modulus" (Bignum.of_int 15) m.Gcrt.modulus

let test_crt_non_coprime_consistent () =
  (* x = 6 mod 10, x = 16 mod 15: gcd 5, both say x = 1 mod 5 -> x = 16 mod 30 *)
  let c1 = Gcrt.make_int ~residue:6 ~modulus:10 and c2 = Gcrt.make_int ~residue:16 ~modulus:15 in
  match Gcrt.merge c1 c2 with
  | None -> Alcotest.fail "consistent congruences must merge"
  | Some m ->
      Alcotest.check big "residue" (Bignum.of_int 16) m.Gcrt.residue;
      Alcotest.check big "modulus" (Bignum.of_int 30) m.Gcrt.modulus

let test_crt_inconsistent () =
  let c1 = Gcrt.make_int ~residue:1 ~modulus:10 and c2 = Gcrt.make_int ~residue:2 ~modulus:15 in
  Alcotest.(check bool) "incompatible detected" false (Gcrt.compatible c1 c2);
  Alcotest.(check bool) "merge fails" true (Gcrt.merge c1 c2 = None)

let test_paper_example () =
  (* Figure 3/4 of the paper: W = 17, p1 = 2, p2 = 3, p3 = 5.
     W = 5 mod p1p2 = 6, W = 7 mod p1p3 = 10, W = 2 mod p2p3 = 15. *)
  let statements =
    [
      Gcrt.make_int ~residue:5 ~modulus:6;
      Gcrt.make_int ~residue:7 ~modulus:10;
      Gcrt.make_int ~residue:2 ~modulus:15;
    ]
  in
  match Gcrt.solve statements with
  | None -> Alcotest.fail "paper example must be consistent"
  | Some w -> Alcotest.check big "W = 17" (Bignum.of_int 17) w

let test_solve_subset_suffices () =
  (* Any two of the three statements above already pin W mod 30 = 17. *)
  let pairs =
    [
      [ Gcrt.make_int ~residue:5 ~modulus:6; Gcrt.make_int ~residue:2 ~modulus:15 ];
      [ Gcrt.make_int ~residue:7 ~modulus:10; Gcrt.make_int ~residue:2 ~modulus:15 ];
    ]
  in
  List.iter
    (fun stmts ->
      match Gcrt.solve stmts with
      | None -> Alcotest.fail "pair must be consistent"
      | Some w -> Alcotest.check big "W = 17" (Bignum.of_int 17) w)
    pairs

let test_binomial () =
  Alcotest.check big "C(5,2)" (Bignum.of_int 10) (Prob.binomial 5 2);
  Alcotest.check big "C(50,25)" (Bignum.of_string "126410606437752") (Prob.binomial 50 25);
  Alcotest.check big "C(n,0)" Bignum.one (Prob.binomial 7 0);
  Alcotest.check big "out of range" Bignum.zero (Prob.binomial 5 9)

let test_recovery_prob_extremes () =
  Alcotest.(check (float 1e-9)) "no deletions" 1.0 (Prob.success_given_deletion_prob ~nodes:10 ~q:0.0);
  Alcotest.(check (float 1e-9)) "all deleted" 0.0 (Prob.success_given_deletion_prob ~nodes:10 ~q:1.0);
  let edges = 10 * 9 / 2 in
  Alcotest.(check (float 1e-9)) "all survive" 1.0 (Prob.success_given_survivors ~nodes:10 ~survivors:edges);
  Alcotest.(check (float 1e-9)) "none survive" 0.0 (Prob.success_given_survivors ~nodes:10 ~survivors:0)

let test_recovery_prob_monotone () =
  let n = 12 in
  let edges = n * (n - 1) / 2 in
  let prev = ref (-1.0) in
  for k = 0 to edges do
    let p = Prob.success_given_survivors ~nodes:n ~survivors:k in
    Alcotest.(check bool) "monotone nondecreasing" true (p >= !prev -. 1e-9);
    prev := p
  done

let test_recovery_prob_matches_simulation () =
  (* Monte-Carlo check of the exact formula at one interior point. *)
  let n = 8 in
  let edges = n * (n - 1) / 2 in
  let k = 12 in
  let rng = Util.Prng.create 99L in
  let all_edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      all_edges := (i, j) :: !all_edges
    done
  done;
  let all_edges = Array.of_list !all_edges in
  let trials = 20000 in
  let success = ref 0 in
  for _ = 1 to trials do
    let shuffled = Array.copy all_edges in
    Util.Prng.shuffle rng shuffled;
    let covered = Array.make n false in
    Array.iteri
      (fun idx (i, j) ->
        if idx < k then begin
          covered.(i) <- true;
          covered.(j) <- true
        end)
      shuffled;
    if Array.for_all Fun.id covered then incr success
  done;
  ignore edges;
  let empirical = float_of_int !success /. float_of_int trials in
  let exact = Prob.success_given_survivors ~nodes:n ~survivors:k in
  Alcotest.(check bool)
    (Printf.sprintf "formula %.4f vs simulation %.4f" exact empirical)
    true
    (abs_float (exact -. empirical) < 0.02)

let qcheck_merge_solution_satisfies_both =
  QCheck.Test.make ~name:"merged congruence satisfies both inputs" ~count:300
    QCheck.(triple (int_range 2 2000) (int_range 2 2000) small_nat)
    (fun (m1, m2, x0) ->
      let w = x0 mod (m1 * m2) in
      let c1 = Gcrt.make_int ~residue:(w mod m1) ~modulus:m1 in
      let c2 = Gcrt.make_int ~residue:(w mod m2) ~modulus:m2 in
      match Gcrt.merge c1 c2 with
      | None -> false (* built from a common solution, must merge *)
      | Some m ->
          let r = Bignum.to_int m.Gcrt.residue in
          r mod m1 = w mod m1 && r mod m2 = w mod m2)

let suite =
  [
    ("gcd/egcd", `Quick, test_gcd_egcd);
    ("is_prime", `Quick, test_is_prime);
    ("next_prime", `Quick, test_next_prime);
    ("primes_with_bits", `Quick, test_primes_with_bits);
    ("coprime_moduli", `Quick, test_coprime_moduli);
    ("crt coprime pair", `Quick, test_crt_pair);
    ("crt non-coprime consistent", `Quick, test_crt_non_coprime_consistent);
    ("crt inconsistent", `Quick, test_crt_inconsistent);
    ("paper Figure 3/4 example", `Quick, test_paper_example);
    ("subset of statements suffices", `Quick, test_solve_subset_suffices);
    ("binomial", `Quick, test_binomial);
    ("recovery probability extremes", `Quick, test_recovery_prob_extremes);
    ("recovery probability monotone", `Quick, test_recovery_prob_monotone);
    ("recovery probability vs simulation", `Slow, test_recovery_prob_matches_simulation);
    QCheck_alcotest.to_alcotest qcheck_merge_solution_satisfies_both;
  ]

(* ---- additional edge cases ---- *)

let test_gcrt_trivial_and_errors () =
  (* empty system solves to 0 mod 1 *)
  (match Numtheory.Gcrt.solve [] with
  | Some v -> Alcotest.check big "empty system" Bignum.zero v
  | None -> Alcotest.fail "empty system must solve");
  (* non-positive modulus rejected *)
  match Numtheory.Gcrt.make_int ~residue:1 ~modulus:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_gcrt_residue_normalized () =
  let c = Numtheory.Gcrt.make_int ~residue:(-3) ~modulus:7 in
  Alcotest.check big "normalized" (Bignum.of_int 4) c.Numtheory.Gcrt.residue

let test_primes_range_exhaustion () =
  (* there are only two 2-bit primes *)
  match Numtheory.Ints.primes_with_bits ~bits:2 ~count:5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let qcheck_gcrt_merge_commutative =
  QCheck.Test.make ~name:"gcrt merge is commutative on consistent pairs" ~count:200
    QCheck.(triple (int_range 2 500) (int_range 2 500) small_nat)
    (fun (m1, m2, x) ->
      let w = x mod (m1 * m2) in
      let c1 = Gcrt.make_int ~residue:(w mod m1) ~modulus:m1 in
      let c2 = Gcrt.make_int ~residue:(w mod m2) ~modulus:m2 in
      match (Gcrt.merge c1 c2, Gcrt.merge c2 c1) with
      | Some a, Some b ->
          Bignum.equal a.Gcrt.residue b.Gcrt.residue && Bignum.equal a.Gcrt.modulus b.Gcrt.modulus
      | _ -> false)

let edge_suite =
  [
    ("gcrt trivial and errors", `Quick, test_gcrt_trivial_and_errors);
    ("gcrt residue normalized", `Quick, test_gcrt_residue_normalized);
    ("primes range exhaustion", `Quick, test_primes_range_exhaustion);
    QCheck_alcotest.to_alcotest qcheck_gcrt_merge_commutative;
  ]

let suite = suite @ edge_suite
