(* Tests for the native control-flow analysis (dominators, natural loops)
   used by tamper-proofing candidate selection. *)

open Nativesim

let assemble items = Asm.assemble { Asm.text = items; data = [] }

let loop_binary =
  assemble
    Asm.[
      I (Insn.Mov_imm (0, 5));
      L "head";
      I (Insn.Cmp_imm (0, 0));
      Jcc (Insn.Eq, Lbl "exit");
      I (Insn.Alu_imm (Insn.Sub, 0, 1));
      Jmp (Lbl "head");
      L "exit";
      I (Insn.Mov_imm (1, 9));
      Jmp (Lbl "tail");
      L "tail";
      I Insn.Halt;
    ]

let test_blocks_partition () =
  let cfg = Cfg.build loop_binary in
  let blocks = Cfg.blocks cfg in
  Alcotest.(check bool) "several blocks" true (List.length blocks >= 4);
  (* blocks cover all instructions exactly once *)
  let total = List.fold_left (fun acc (b : Cfg.block) -> acc + List.length b.Cfg.insns) 0 blocks in
  Alcotest.(check int) "cover all instructions" (List.length (Disasm.disassemble loop_binary)) total

let test_successors () =
  let cfg = Cfg.build loop_binary in
  let head = Binary.symbol loop_binary "head" in
  let exit_ = Binary.symbol loop_binary "exit" in
  match Cfg.block_of cfg head with
  | None -> Alcotest.fail "head block missing"
  | Some b ->
      (* the conditional block reaches both the exit and the body *)
      Alcotest.(check bool) "branch to exit" true (List.mem exit_ b.Cfg.succs);
      Alcotest.(check int) "two successors" 2 (List.length b.Cfg.succs)

let test_dominators_entry () =
  let cfg = Cfg.build loop_binary in
  let dom = Cfg.dominators cfg in
  let entry = Layout.text_base in
  Hashtbl.iter
    (fun leader ds ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates 0x%x" leader)
        true (List.mem entry ds))
    dom

let test_back_edge_and_loop () =
  let cfg = Cfg.build loop_binary in
  let head = Binary.symbol loop_binary "head" in
  let edges = Cfg.back_edges cfg in
  Alcotest.(check bool) "one back edge to head" true (List.exists (fun (_, dst) -> dst = head) edges);
  (* the loop body is in a loop; the tail is not *)
  Alcotest.(check bool) "head in loop" true (Cfg.in_loop cfg head);
  let tail = Binary.symbol loop_binary "tail" in
  Alcotest.(check bool) "tail not in loop" false (Cfg.in_loop cfg tail);
  let leaders = Cfg.loop_leaders cfg in
  Alcotest.(check bool) "loop leaders nonempty" true (leaders <> [])

let test_straightline_no_loops () =
  let bin = assemble Asm.[ I (Insn.Mov_imm (0, 1)); I (Insn.Out 0); I Insn.Halt ] in
  let cfg = Cfg.build bin in
  Alcotest.(check (list (pair int int))) "no back edges" [] (Cfg.back_edges cfg);
  Alcotest.(check (list int)) "no loop leaders" [] (Cfg.loop_leaders cfg)

let test_nested_loops () =
  let bin =
    assemble
      Asm.[
        I (Insn.Mov_imm (0, 3));
        L "outer";
        I (Insn.Mov_imm (1, 3));
        L "inner";
        I (Insn.Alu_imm (Insn.Sub, 1, 1));
        I (Insn.Cmp_imm (1, 0));
        Jcc (Insn.Gt, Lbl "inner");
        I (Insn.Alu_imm (Insn.Sub, 0, 1));
        I (Insn.Cmp_imm (0, 0));
        Jcc (Insn.Gt, Lbl "outer");
        I Insn.Halt;
      ]
  in
  let cfg = Cfg.build bin in
  Alcotest.(check int) "two back edges" 2 (List.length (Cfg.back_edges cfg));
  Alcotest.(check bool) "inner head in loop" true (Cfg.in_loop cfg (Binary.symbol bin "inner"));
  Alcotest.(check bool) "outer head in loop" true (Cfg.in_loop cfg (Binary.symbol bin "outer"))

let test_minic_loops_detected () =
  (* the compiled caffeine suite is full of while loops *)
  let bin = Workloads.Workload.native_binary Workloads.Caffeine.suite in
  let cfg = Cfg.build bin in
  Alcotest.(check bool) "loops found" true (List.length (Cfg.loop_leaders cfg) > 5)

let suite =
  [
    ("blocks partition text", `Quick, test_blocks_partition);
    ("successors", `Quick, test_successors);
    ("entry dominates everything", `Quick, test_dominators_entry);
    ("back edge and natural loop", `Quick, test_back_edge_and_loop);
    ("straight-line has no loops", `Quick, test_straightline_no_loops);
    ("nested loops", `Quick, test_nested_loops);
    ("compiled minic loops detected", `Quick, test_minic_loops_detected);
  ]
