(* Tests for the MiniC front-end and both compilers, including differential
   testing: the stack-VM build and the native build must reproduce the
   reference interpreter's outputs exactly. *)

let parse = Minic.Parser.parse

(* run a source program on all three substrates and compare outputs *)
let run_all ?(input = []) src =
  let ast = parse src in
  ignore (Minic.Typecheck.check ast);
  let reference = Minic.Interp.run ast ~input in
  let vm_prog = Minic.To_stackvm.compile ast in
  let vm = Stackvm.Interp.run vm_prog ~input in
  let native = Nativesim.Machine.run (Nativesim.Asm.assemble (Minic.To_native.compile ast)) ~input in
  (reference, vm, native)

let check_outputs ?input ~expect src =
  let reference, vm, native = run_all ?input src in
  (match reference.Minic.Interp.outcome with
  | Minic.Interp.Finished _ -> ()
  | Minic.Interp.Runtime_error m -> Alcotest.failf "interp error: %s" m
  | Minic.Interp.Out_of_fuel -> Alcotest.fail "interp out of fuel");
  Alcotest.(check (list int)) "interp outputs" expect reference.Minic.Interp.outputs;
  Alcotest.(check (list int)) "vm outputs" expect vm.Stackvm.Interp.outputs;
  (match vm.Stackvm.Interp.outcome with
  | Stackvm.Interp.Finished _ -> ()
  | Stackvm.Interp.Trapped { reason; _ } -> Alcotest.failf "vm trapped: %s" reason
  | Stackvm.Interp.Out_of_fuel -> Alcotest.fail "vm out of fuel");
  Alcotest.(check (list int)) "native outputs" expect native.Nativesim.Machine.outputs;
  match native.Nativesim.Machine.outcome with
  | Nativesim.Machine.Halted -> ()
  | Nativesim.Machine.Trapped { reason; addr } -> Alcotest.failf "native trapped at 0x%x: %s" addr reason
  | Nativesim.Machine.Out_of_fuel -> Alcotest.fail "native out of fuel"

(* ---- parsing ---- *)

let test_parse_expr_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match Minic.Parser.parse_expr "1 + 2 * 3" with
  | Minic.Ast.Bin (Minic.Ast.Add, Minic.Ast.Num 1, Minic.Ast.Bin (Minic.Ast.Mul, Minic.Ast.Num 2, Minic.Ast.Num 3)) -> ()
  | _ -> Alcotest.fail "wrong precedence"

let test_parse_left_assoc () =
  match Minic.Parser.parse_expr "10 - 4 - 3" with
  | Minic.Ast.Bin (Minic.Ast.Sub, Minic.Ast.Bin (Minic.Ast.Sub, Minic.Ast.Num 10, Minic.Ast.Num 4), Minic.Ast.Num 3) -> ()
  | _ -> Alcotest.fail "subtraction must associate left"

let test_parse_errors () =
  let bad = [ "func main( { return 0; }"; "func main() { return 0 }"; "global x;"; "func main() { 1 +; }" ] in
  List.iter
    (fun src ->
      match parse src with
      | _ -> Alcotest.failf "accepted bad program: %s" src
      | exception (Minic.Parser.Error _ | Minic.Lexer.Error _) -> ())
    bad

let test_comments () =
  check_outputs ~expect:[ 5 ]
    {| // line comment
       func main() { /* block
                        comment */ print(5); return 0; } |}

(* ---- typechecking ---- *)

let test_type_errors () =
  let bad =
    [
      "func main() { return x; }";
      "func main() { int a = new(3); return 0; }";
      "func main() { arr a = 3; return 0; }";
      "func main() { int x = 1; x[0] = 2; return 0; }";
      "func main() { break; return 0; }";
      "func f(int x) { return x; } func main() { return f(1, 2); }";
      "func main() { print(1); }";
      "func notmain() { return 0; }";
      "func main(int x) { return 0; }";
      "func main() { arr a = new(2); if (a == 1) { return 1; } return 0; }";
    ]
  in
  List.iter
    (fun src ->
      match Minic.Typecheck.check (parse src) with
      | _ -> Alcotest.failf "accepted ill-typed program: %s" src
      | exception Minic.Typecheck.Error _ -> ())
    bad

let test_return_type_inference () =
  let src =
    {| func make(int n) { return new(n); }
       func use() { arr a = make(3); return len(a); }
       func main() { return use(); } |}
  in
  let tys = Minic.Typecheck.check (parse src) in
  Alcotest.(check bool) "make returns arr" true (List.assoc "make" tys = Minic.Ast.Arr);
  Alcotest.(check bool) "use returns int" true (List.assoc "use" tys = Minic.Ast.Int)

(* ---- differential execution ---- *)

let test_arith () =
  check_outputs ~expect:[ 14; -1; 3; 2; 12; 6; 6; 48; -2 ]
    {| func main() {
         print(2 + 3 * 4);
         print(3 - 4);
         print(7 / 2);
         print(7 % 5);
         print(8 | 4);
         print(7 & 14);
         print(5 ^ 3);
         print(3 << 4);
         print(-16 >> 3);
         return 0;
       } |}

let test_comparisons_and_logic () =
  check_outputs ~expect:[ 1; 0; 1; 1; 0; 1; 0; 1 ]
    {| func main() {
         print(3 < 4);
         print(4 < 3);
         print(3 <= 3);
         print(3 == 3);
         print(3 != 3);
         print(1 && 2);
         print(0 && 1);
         print(0 || 7);
         return 0;
       } |}

let test_short_circuit () =
  (* the right side of && must not run when the left is false *)
  check_outputs ~expect:[ 0; 1 ]
    {| global int effects;
       func bump() { effects = effects + 1; return 1; }
       func main() {
         int x = 0 && bump();
         print(effects);
         int y = 1 || bump();
         print(y);
         return 0;
       } |}

let test_gcd () =
  check_outputs ~input:[ 252; 105 ] ~expect:[ 21 ]
    {| func gcd(int a, int b) {
         while (b != 0) { int t = a % b; a = b; b = t; }
         return a;
       }
       func main() { print(gcd(read(), read())); return 0; } |}

let test_recursion () =
  check_outputs ~expect:[ 6765 ]
    {| func fib(int n) {
         if (n < 2) { return n; }
         return fib(n - 1) + fib(n - 2);
       }
       func main() { print(fib(20)); return 0; } |}

let test_mutual_recursion () =
  check_outputs ~expect:[ 1; 0; 1 ]
    {| func is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
       func is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
       func main() { print(is_even(10)); print(is_even(7)); print(is_odd(3)); return 0; } |}

let test_arrays_and_sorting () =
  check_outputs ~input:[ 5; 3; 9; 1; 7; 5 ] ~expect:[ 1; 3; 5; 7; 9 ]
    {| func main() {
         int n = read();
         int a[n];
         int i = 0;
         while (i < n) { a[i] = read(); i = i + 1; }
         // insertion sort
         i = 1;
         while (i < n) {
           int key = a[i];
           int j = i - 1;
           while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j = j - 1; }
           a[j + 1] = key;
           i = i + 1;
         }
         i = 0;
         while (i < n) { print(a[i]); i = i + 1; }
         return 0;
       } |}

let test_global_arrays () =
  check_outputs ~expect:[ 10; 45 ]
    {| global int table[10];
       global int total;
       func fill() {
         int i = 0;
         while (i < len(table)) { table[i] = i; i = i + 1; }
         return 0;
       }
       func main() {
         fill();
         print(len(table));
         int i = 0;
         while (i < len(table)) { total = total + table[i]; i = i + 1; }
         print(total);
         return 0;
       } |}

let test_break_continue () =
  check_outputs ~expect:[ 0; 1; 2; 4; 5 ]
    {| func main() {
         int i = 0;
         while (1) {
           if (i == 3) { i = i + 1; continue; }
           if (i > 5) { break; }
           print(i);
           i = i + 1;
         }
         return 0;
       } |}

let test_shadowing_scopes () =
  check_outputs ~expect:[ 2; 1 ]
    {| func main() {
         int x = 1;
         if (1) { int x = 2; print(x); }
         print(x);
         return 0;
       } |}

let test_arrays_as_arguments () =
  check_outputs ~expect:[ 60 ]
    {| func sum(arr a) {
         int total = 0;
         int i = 0;
         while (i < len(a)) { total = total + a[i]; i = i + 1; }
         return total;
       }
       func main() {
         int a[3];
         a[0] = 10; a[1] = 20; a[2] = 30;
         print(sum(a));
         return 0;
       } |}

let test_array_returning_function () =
  check_outputs ~expect:[ 3; 0; 5 ]
    {| func range_to(int n) {
         int a[n];
         int i = 0;
         while (i < n) { a[i] = i * 5; i = i + 1; }
         return a;
       }
       func main() {
         arr a = range_to(3);
         print(len(a));
         print(a[0]);
         print(a[1]);
         return 0;
       } |}

let test_unary_ops () =
  check_outputs ~expect:[ -5; 1; 0; -8 ]
    {| func main() {
         print(-5);
         print(!0);
         print(!3);
         print(~7);
         return 0;
       } |}

let test_div_by_zero_consistent () =
  (* all three substrates must fail (no output beyond the first print) *)
  let src = {| func main() { print(1); print(1 / (1 - 1)); return 0; } |} in
  let reference, vm, native = run_all src in
  Alcotest.(check bool) "interp errors" true
    (match reference.Minic.Interp.outcome with Minic.Interp.Runtime_error _ -> true | _ -> false);
  Alcotest.(check bool) "vm traps" true
    (match vm.Stackvm.Interp.outcome with Stackvm.Interp.Trapped _ -> true | _ -> false);
  Alcotest.(check bool) "native traps" true
    (match native.Nativesim.Machine.outcome with Nativesim.Machine.Trapped _ -> true | _ -> false);
  Alcotest.(check (list int)) "same partial outputs" reference.Minic.Interp.outputs vm.Stackvm.Interp.outputs;
  Alcotest.(check (list int)) "native partial outputs" reference.Minic.Interp.outputs native.Nativesim.Machine.outputs

let test_out_of_bounds_consistent () =
  let src = {| func main() { int a[2]; print(7); print(a[5]); return 0; } |} in
  let reference, vm, native = run_all src in
  Alcotest.(check bool) "interp errors" true
    (match reference.Minic.Interp.outcome with Minic.Interp.Runtime_error _ -> true | _ -> false);
  Alcotest.(check bool) "vm traps" true
    (match vm.Stackvm.Interp.outcome with Stackvm.Interp.Trapped _ -> true | _ -> false);
  Alcotest.(check bool) "native traps" true
    (match native.Nativesim.Machine.outcome with Nativesim.Machine.Trapped _ -> true | _ -> false)

(* randomized differential testing on a parameterized branchy program *)
let qcheck_differential =
  QCheck.Test.make ~name:"random inputs agree across all three substrates" ~count:60
    QCheck.(pair (int_bound 60) (int_bound 97))
    (fun (a, b) ->
      let src =
        {| func collatz(int n) {
             int steps = 0;
             while (n != 1 && steps < 200) {
               if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
               steps = steps + 1;
             }
             return steps;
           }
           func main() {
             int a = read();
             int b = read();
             print(collatz(a + 2));
             print(collatz(b + 2));
             if (a < b) { print(a * b + 1); } else { print(a - b); }
             int acc = 0;
             int i = 0;
             while (i < a % 7 + 3) { acc = acc + i * i; i = i + 1; }
             print(acc);
             return 0;
           } |}
      in
      let input = [ a; b ] in
      let reference, vm, native = run_all ~input src in
      reference.Minic.Interp.outputs = vm.Stackvm.Interp.outputs
      && reference.Minic.Interp.outputs = native.Nativesim.Machine.outputs)

let suite =
  [
    ("parse precedence", `Quick, test_parse_expr_precedence);
    ("parse left associativity", `Quick, test_parse_left_assoc);
    ("parse errors", `Quick, test_parse_errors);
    ("comments", `Quick, test_comments);
    ("type errors", `Quick, test_type_errors);
    ("return type inference", `Quick, test_return_type_inference);
    ("arithmetic", `Quick, test_arith);
    ("comparisons and logic", `Quick, test_comparisons_and_logic);
    ("short circuit", `Quick, test_short_circuit);
    ("gcd", `Quick, test_gcd);
    ("recursion", `Quick, test_recursion);
    ("mutual recursion", `Quick, test_mutual_recursion);
    ("arrays and sorting", `Quick, test_arrays_and_sorting);
    ("global arrays", `Quick, test_global_arrays);
    ("break/continue", `Quick, test_break_continue);
    ("shadowing scopes", `Quick, test_shadowing_scopes);
    ("arrays as arguments", `Quick, test_arrays_as_arguments);
    ("array-returning function", `Quick, test_array_returning_function);
    ("unary ops", `Quick, test_unary_ops);
    ("division by zero consistent", `Quick, test_div_by_zero_consistent);
    ("out of bounds consistent", `Quick, test_out_of_bounds_consistent);
    QCheck_alcotest.to_alcotest qcheck_differential;
  ]

(* ---- pretty-printer roundtrip ---- *)

let roundtrip_program src =
  let ast = parse src in
  let printed = Minic.Pretty.to_string ast in
  let reparsed = Minic.Parser.parse printed in
  (ast = reparsed, printed)

let test_pretty_roundtrip_samples () =
  let samples =
    [
      {| func main() { return 0; } |};
      {| global int g; global int t[5]; global arr h;
         func f(int x, arr a) { a[x] = x * 2; return a[x]; }
         func main() { int a[3]; print(f(1, a)); return 0; } |};
      {| func main() {
           int x = 1;
           while (x < 10) { if (x % 2 == 0) { x = x + 3; } else { x = x + 1; continue; } }
           if (!x) { print(~x); } else { if (x >= 5) { print(-x); } }
           return x << 2 >> 1 & 7 | 1 ^ 3;
         } |};
      {| func main() { int y = read(); print(len(new(y)) + (1 && 0 || 1)); return 0 - 5; } |};
    ]
  in
  List.iter
    (fun src ->
      let ok, printed = roundtrip_program src in
      if not ok then Alcotest.failf "pretty/parse roundtrip failed for:\n%s" printed)
    samples

let test_pretty_roundtrip_workloads () =
  (* every shipped workload source must roundtrip *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let ok, _ = roundtrip_program w.Workloads.Workload.source in
      Alcotest.(check bool) (w.Workloads.Workload.name ^ " roundtrips") true ok)
    ((Workloads.Caffeine.suite :: Workloads.Caffeine.kernels)
    @ [ Workloads.Jesslite.engine ]
    @ Workloads.Spec.all)

let test_pretty_preserves_semantics () =
  (* printing and re-parsing must not change behaviour *)
  let w = Workloads.Spec.find "mcf" in
  let printed = Minic.Pretty.to_string (parse w.Workloads.Workload.source) in
  let r1 = Minic.Interp.run (parse w.Workloads.Workload.source) ~input:w.Workloads.Workload.input in
  let r2 = Minic.Interp.run (Minic.Parser.parse printed) ~input:w.Workloads.Workload.input in
  Alcotest.(check (list int)) "same outputs" r1.Minic.Interp.outputs r2.Minic.Interp.outputs

(* random expression generator for the roundtrip property *)
let rec gen_expr rng depth : Minic.Ast.expr =
  let open Minic.Ast in
  if depth = 0 then
    match Util.Prng.int rng 3 with
    | 0 -> Num (Util.Prng.int_in rng (-50) 50)
    | 1 -> Var "x"
    | _ -> Read
  else begin
    match Util.Prng.int rng 7 with
    | 0 ->
        let ops = [| Add; Sub; Mul; Div; Rem; Band; Bor; Bxor; Shl; Shr; Eq; Ne; Lt; Le; Gt; Ge; Land; Lor |] in
        Bin (Util.Prng.pick rng ops, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 1 -> Unary (Util.Prng.pick rng [| Neg; Not; BNot |], gen_expr rng (depth - 1))
    | 2 -> Index (Var "a", gen_expr rng (depth - 1))
    | 3 -> Call ("f", [ gen_expr rng (depth - 1) ])
    | 4 -> Len (Var "a")
    | 5 -> New (gen_expr rng (depth - 1))
    | _ -> Num (Util.Prng.int rng 100)
  end

(* the parser folds unary minus of literals, so compare normalized ASTs *)
let rec normalize (e : Minic.Ast.expr) : Minic.Ast.expr =
  match e with
  | Unary (Neg, e') -> begin
      match normalize e' with
      | Num n -> Num (-n)
      | e'' -> Unary (Neg, e'')
    end
  | Unary (op, e') -> Unary (op, normalize e')
  | Bin (op, a, b) -> Bin (op, normalize a, normalize b)
  | Index (a, i) -> Index (normalize a, normalize i)
  | Call (f, args) -> Call (f, List.map normalize args)
  | New n -> New (normalize n)
  | Len a -> Len (normalize a)
  | (Num _ | Var _ | Read) as leaf -> leaf

let qcheck_pretty_expr_roundtrip =
  QCheck.Test.make ~name:"random expression pretty/parse roundtrip" ~count:300 QCheck.small_nat
    (fun seed ->
      let rng = Util.Prng.create (Int64.of_int (seed + 1)) in
      let e = gen_expr rng 4 in
      let printed = Minic.Pretty.expr_to_string e in
      match Minic.Parser.parse_expr printed with
      | reparsed -> reparsed = normalize e
      | exception _ -> false)

let pretty_suite =
  [
    ("pretty roundtrip samples", `Quick, test_pretty_roundtrip_samples);
    ("pretty roundtrip workloads", `Quick, test_pretty_roundtrip_workloads);
    ("pretty preserves semantics", `Quick, test_pretty_preserves_semantics);
    QCheck_alcotest.to_alcotest qcheck_pretty_expr_roundtrip;
  ]

let suite = suite @ pretty_suite
