(* Tests for the distortive attack suite: every attack must preserve
   semantics and verifier-cleanliness; the watermark must survive the
   attacks the paper reports surviving (§5.1.2). *)

open Stackvm

(* Reuse the branchy host from the jwm tests. *)
let host_program = Test_jwm.host_program
let secret_input = Test_jwm.secret_input

let test_inputs = [ secret_input; [ 7; 9 ]; [ 100; 64 ]; [ 1; 1 ]; [ 13; 13 ] ]

let watermark = Bignum.of_string "240543712258492747216458290490865902517"

let watermarked =
  lazy
    (Jwm.Embed.embed
       {
         Jwm.Embed.passphrase = "the secret watermark key";
         watermark;
         watermark_bits = 128;
         pieces = 45;
         input = secret_input;
       }
       host_program)
      .Jwm.Embed.program

let recognize_in prog =
  match
    (Jwm.Recognize.recognize ~passphrase:"the secret watermark key" ~watermark_bits:128
       ~input:secret_input prog)
      .Jwm.Recognize.value
  with
  | Some w -> Bignum.equal w watermark
  | None -> false

let check_attack_preserves name attack =
  let rng = Util.Prng.create 7L in
  let attacked = attack rng host_program in
  (match Verify.check attacked with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "%s: attacked program does not verify: %s" name
        (Format.asprintf "%a" Verify.pp_error (List.hd es)));
  Alcotest.(check bool) (name ^ " semantics preserved") true
    (Interp.equivalent_on host_program attacked ~inputs:test_inputs)

let test_all_attacks_preserve_semantics () =
  List.iter (fun (name, attack) -> check_attack_preserves name attack) Vmattacks.Attacks.all

let test_attacks_preserve_watermarked_semantics () =
  let wm = Lazy.force watermarked in
  List.iter
    (fun (name, attack) ->
      let rng = Util.Prng.create 11L in
      let attacked = attack rng wm in
      Alcotest.(check bool) (name ^ " on watermarked program") true
        (Interp.equivalent_on wm attacked ~inputs:test_inputs))
    Vmattacks.Attacks.all

let surviving_attacks =
  (* Every attack except heavy branch insertion should leave the mark
     recoverable (block duplication may split a snippet's branch identity,
     but at count 3 on this host it is overwhelmingly likely to miss). *)
  [
    "nop-insertion";
    "block-reorder";
    "branch-sense-inversion";
    "goto-chaining";
    "block-splitting";
    "instruction-reorder";
    "local-permute";
    "constant-split";
    "dead-code-insertion";
    "method-proxy";
    "inline-calls";
  ]

let test_watermark_survives_attacks () =
  let wm = Lazy.force watermarked in
  Alcotest.(check bool) "baseline recognition" true (recognize_in wm);
  List.iter
    (fun name ->
      let attack = List.assoc name Vmattacks.Attacks.all in
      let rng = Util.Prng.create 13L in
      let attacked = attack rng wm in
      Alcotest.(check bool) (name ^ ": watermark survives") true (recognize_in attacked))
    surviving_attacks

let test_watermark_survives_moderate_branch_insertion () =
  let wm = Lazy.force watermarked in
  let rng = Util.Prng.create 17L in
  let attacked = Vmattacks.Attacks.branch_insertion ~rate:0.25 rng wm in
  Alcotest.(check bool) "survives 25% branch insertion" true (recognize_in attacked)

let test_attack_composition () =
  (* Chain several attacks; the mark should still be recoverable. *)
  let wm = Lazy.force watermarked in
  let rng = Util.Prng.create 19L in
  let attacked =
    wm
    |> Vmattacks.Attacks.nop_insertion ~rate:0.2 rng
    |> Vmattacks.Attacks.block_reorder rng
    |> Vmattacks.Attacks.branch_sense_invert ~fraction:0.5 rng
    |> Vmattacks.Attacks.constant_split ~fraction:0.3 rng
  in
  Verify.check_exn attacked;
  Alcotest.(check bool) "composed attacks: semantics" true
    (Interp.equivalent_on wm attacked ~inputs:test_inputs);
  Alcotest.(check bool) "composed attacks: watermark survives" true (recognize_in attacked)

let test_branch_insertion_adds_branches () =
  let rng = Util.Prng.create 23L in
  let count prog =
    Array.fold_left
      (fun acc (f : Program.func) ->
        acc + Array.fold_left (fun a i -> if Instr.is_branch i then a + 1 else a) 0 f.Program.code)
      0 prog.Program.funcs
  in
  let before = count host_program in
  let attacked = Vmattacks.Attacks.branch_insertion ~rate:1.0 rng host_program in
  let after = count attacked in
  Alcotest.(check bool) "roughly doubles branch count" true
    (after >= before + (before / 2) && after <= before * 3)

let test_program_encryption_defeats_instrumentation () =
  let wm = Lazy.force watermarked in
  let pkg = Vmattacks.Attacks.encrypt_package ~key:99L wm in
  (* static instrumentation (bytecode rewriting) fails *)
  Alcotest.(check bool) "static instrumenter blind" true
    (Vmattacks.Attacks.static_instrument pkg = None);
  (* the package still runs, with identical behaviour *)
  let r = Vmattacks.Attacks.run_package pkg ~input:secret_input in
  let r0 = Interp.run wm ~input:secret_input in
  Alcotest.(check (list int)) "package runs identically" r0.Interp.outputs r.Interp.outputs;
  (* ciphertext is not the plaintext serialization *)
  Alcotest.(check bool) "bytes are encrypted" true
    (Vmattacks.Attacks.package_bytes pkg <> Serialize.encode wm)

let test_vm_tracing_recovers_from_encryption () =
  (* §5.1.2: tracing through the VM's profiling interface still sees the
     decoded bytecode, so recognition survives class encryption. *)
  let wm = Lazy.force watermarked in
  let pkg = Vmattacks.Attacks.encrypt_package ~key:99L wm in
  let trace = Vmattacks.Attacks.vm_trace_package pkg ~input:secret_input in
  let bits = Trace.bitstring trace in
  let params = Codec.Params.make ~passphrase:"the secret watermark key" ~watermark_bits:128 () in
  let report = Codec.Recombine.recover_from_bitstring params bits in
  match report.Codec.Recombine.value with
  | Some w -> Alcotest.(check bool) "recovered via VM tracing" true (Bignum.equal w watermark)
  | None -> Alcotest.fail "VM-level tracing failed to recover the mark"

let test_attacks_deterministic () =
  List.iter
    (fun (name, attack) ->
      let p1 = attack (Util.Prng.create 3L) host_program in
      let p2 = attack (Util.Prng.create 3L) host_program in
      Alcotest.(check string) (name ^ " deterministic") (Serialize.encode p1) (Serialize.encode p2))
    Vmattacks.Attacks.all

let qcheck_attacks_random_seeds =
  QCheck.Test.make ~name:"attacks preserve semantics under random seeds" ~count:30
    QCheck.(pair (int_bound (List.length Vmattacks.Attacks.all - 1)) small_nat)
    (fun (which, seed) ->
      let _, attack = List.nth Vmattacks.Attacks.all which in
      let rng = Util.Prng.create (Int64.of_int (seed + 1)) in
      let attacked = attack rng host_program in
      match Verify.check attacked with
      | Error _ -> false
      | Ok () -> Interp.equivalent_on host_program attacked ~inputs:[ secret_input; [ 9; 12 ] ])

let suite =
  [
    ("all attacks preserve semantics", `Quick, test_all_attacks_preserve_semantics);
    ("attacks preserve watermarked semantics", `Quick, test_attacks_preserve_watermarked_semantics);
    ("watermark survives attack suite", `Slow, test_watermark_survives_attacks);
    ("watermark survives moderate branch insertion", `Quick, test_watermark_survives_moderate_branch_insertion);
    ("attack composition", `Quick, test_attack_composition);
    ("branch insertion adds branches", `Quick, test_branch_insertion_adds_branches);
    ("program encryption defeats instrumentation", `Quick, test_program_encryption_defeats_instrumentation);
    ("VM tracing recovers from encryption", `Quick, test_vm_tracing_recovers_from_encryption);
    ("attacks deterministic", `Quick, test_attacks_deterministic);
    QCheck_alcotest.to_alcotest qcheck_attacks_random_seeds;
  ]

(* ---- attacks on MiniC-compiled workloads (integration) ---- *)

let test_attacks_on_compiled_workloads () =
  (* the attack suite must hold up on compiler-generated code, not just
     hand-written hosts *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = Workloads.Workload.vm_program w in
      let inputs = [ w.Workloads.Workload.input ] in
      List.iter
        (fun (name, attack) ->
          let rng = Util.Prng.create 31L in
          let attacked = attack rng prog in
          (match Verify.check attacked with
          | Ok () -> ()
          | Error _ -> Alcotest.failf "%s on %s does not verify" name w.Workloads.Workload.name);
          Alcotest.(check bool)
            (Printf.sprintf "%s preserves %s" name w.Workloads.Workload.name)
            true
            (Interp.equivalent_on prog attacked ~inputs))
        Vmattacks.Attacks.all)
    [ Workloads.Caffeine.suite; Workloads.Miniinterp.interpreter ]

let suite = suite @ [ ("attacks on compiled workloads", `Slow, test_attacks_on_compiled_workloads) ]
