test/test_util.ml: Alcotest Array Bitstring Gen List Prng QCheck QCheck_alcotest Stats Util
