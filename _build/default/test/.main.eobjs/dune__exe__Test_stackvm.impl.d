test/test_stackvm.ml: Alcotest Array Asm Hashtbl Instr Int64 Interp List Printf Program QCheck QCheck_alcotest Rewrite Serialize Stackvm Trace Util Verify
