test/test_minic.ml: Alcotest Int64 List Minic Nativesim QCheck QCheck_alcotest Stackvm Util Workloads
