test/test_nwm.ml: Alcotest Array Asm Bignum Binary Disasm Fun Hashtbl Insn Int64 Layout List Machine Nativesim Nattacks Nwm Phash Printf QCheck QCheck_alcotest Util Workloads
