test/test_vmattacks.ml: Alcotest Array Bignum Codec Format Instr Int64 Interp Jwm Lazy List Printf Program QCheck QCheck_alcotest Serialize Stackvm Test_jwm Trace Util Verify Vmattacks Workloads
