test/test_nattacks.ml: Alcotest Asm Bignum Lazy Nativesim Nattacks Nwm Test_nwm Util
