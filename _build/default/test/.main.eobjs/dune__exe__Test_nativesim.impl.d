test/test_nativesim.ml: Alcotest Asm Binary Char Disasm Insn Layout List Machine Nativesim Profile QCheck QCheck_alcotest Rewriter String Util
