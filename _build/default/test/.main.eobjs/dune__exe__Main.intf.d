test/main.mli:
