test/test_jwm.ml: Alcotest Asm Bignum Codec Instr Int64 Interp Jwm List Printf Program QCheck QCheck_alcotest Rewrite Serialize Stackvm Trace Util Verify
