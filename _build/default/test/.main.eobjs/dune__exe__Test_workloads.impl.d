test/test_workloads.ml: Alcotest Hashtbl List Nativesim Printf Stackvm Workloads
