test/test_bignum.ml: Alcotest Bignum Int64 List QCheck QCheck_alcotest Util
