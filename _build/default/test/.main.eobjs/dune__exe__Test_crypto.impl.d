test/test_crypto.ml: Alcotest Array Crypto List Printf QCheck QCheck_alcotest Util
