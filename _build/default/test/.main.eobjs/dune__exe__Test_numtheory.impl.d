test/test_numtheory.ml: Alcotest Array Bignum Fun Gcrt Ints List Numtheory Printf Prob QCheck QCheck_alcotest Util
