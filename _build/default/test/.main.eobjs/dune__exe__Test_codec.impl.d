test/test_codec.ml: Alcotest Array Bignum Bytes Codec Int64 List Numtheory Params Pieces Printf QCheck QCheck_alcotest Recombine Statement Util
