test/test_cfg.ml: Alcotest Asm Binary Cfg Disasm Hashtbl Insn Layout List Nativesim Printf Workloads
