(* Tests for the arbitrary-precision integer substrate. *)

let big = Alcotest.testable Bignum.pp Bignum.equal

let b = Bignum.of_string

let test_small_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) "int roundtrip" n (Bignum.to_int (Bignum.of_int n)))
    [ 0; 1; -1; 42; -42; max_int / 2; min_int / 2; 1 lsl 55 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "string roundtrip" s (Bignum.to_string (b s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-987654321987654321987654321" ]

let test_add_sub () =
  let x = b "123456789012345678901234567890" in
  let y = b "999999999999999999999999999999" in
  Alcotest.check big "x + y - y = x" x (Bignum.sub (Bignum.add x y) y);
  Alcotest.check big "x - x = 0" Bignum.zero (Bignum.sub x x);
  Alcotest.check big "commutative" (Bignum.add x y) (Bignum.add y x)

let test_mul () =
  let x = b "123456789" and y = b "987654321" in
  Alcotest.check big "known product" (b "121932631112635269") (Bignum.mul x y);
  Alcotest.check big "sign" (b "-121932631112635269") (Bignum.mul (Bignum.neg x) y)

let test_divmod_identity () =
  let a = b "123456789012345678901234567890123" in
  let d = b "98765432109876" in
  let q, r = Bignum.divmod a d in
  Alcotest.check big "a = q*d + r" a (Bignum.add (Bignum.mul q d) r);
  Alcotest.(check bool) "|r| < |d|" true (Bignum.compare (Bignum.abs r) (Bignum.abs d) < 0)

let test_divmod_signs () =
  (* Truncated division: remainder takes the dividend's sign. *)
  let check (a, d, q, r) =
    let qa, ra = Bignum.divmod (Bignum.of_int a) (Bignum.of_int d) in
    Alcotest.(check int) "q" q (Bignum.to_int qa);
    Alcotest.(check int) "r" r (Bignum.to_int ra)
  in
  List.iter check [ (7, 2, 3, 1); (-7, 2, -3, -1); (7, -2, -3, 1); (-7, -2, 3, -1) ]

let test_erem_nonneg () =
  let r = Bignum.erem (Bignum.of_int (-7)) (Bignum.of_int 3) in
  Alcotest.(check int) "euclidean" 2 (Bignum.to_int r)

let test_gcd_lcm () =
  let x = Bignum.of_int (12 * 35) and y = Bignum.of_int (18 * 35) in
  Alcotest.(check int) "gcd" 210 (Bignum.to_int (Bignum.gcd x y));
  Alcotest.(check int) "lcm" 360 (Bignum.to_int (Bignum.lcm (Bignum.of_int 72) (Bignum.of_int 120)))

let test_egcd_bezout () =
  let a = b "1234567890123456789" and bb = b "987654321098765432" in
  let g, s, t = Bignum.egcd a bb in
  let lhs = Bignum.add (Bignum.mul s a) (Bignum.mul t bb) in
  Alcotest.check big "bezout" g lhs;
  Alcotest.check big "divides a" Bignum.zero (Bignum.rem a g);
  Alcotest.check big "divides b" Bignum.zero (Bignum.rem bb g)

let test_pow () =
  Alcotest.check big "2^100" (b "1267650600228229401496703205376") (Bignum.pow Bignum.two 100);
  Alcotest.check big "x^0" Bignum.one (Bignum.pow (b "999") 0)

let test_shifts () =
  let x = b "123456789123456789" in
  Alcotest.check big "shift roundtrip" x (Bignum.shift_right (Bignum.shift_left x 67) 67);
  Alcotest.check big "shift_left is *2^k" (Bignum.mul x (Bignum.pow Bignum.two 13)) (Bignum.shift_left x 13)

let test_bits_roundtrip () =
  let x = b "987654321234567898765432123456789" in
  let width = Bignum.num_bits x in
  Alcotest.check big "of_bits . to_bits" x (Bignum.of_bits (Bignum.to_bits x ~width))

let test_num_bits () =
  Alcotest.(check int) "zero" 0 (Bignum.num_bits Bignum.zero);
  Alcotest.(check int) "one" 1 (Bignum.num_bits Bignum.one);
  Alcotest.(check int) "256" 9 (Bignum.num_bits (Bignum.of_int 256));
  Alcotest.(check int) "2^100" 101 (Bignum.num_bits (Bignum.pow Bignum.two 100))

let test_random_bits_range () =
  let rng = Util.Prng.create 11L in
  for _ = 1 to 50 do
    let x = Bignum.random_bits rng 768 in
    Alcotest.(check bool) "below 2^768" true (Bignum.compare x (Bignum.pow Bignum.two 768) < 0);
    Alcotest.(check bool) "nonnegative" true (Bignum.sign x >= 0)
  done

let arb_pair_of_ints = QCheck.(pair (int_bound (1 lsl 30)) (int_range 1 (1 lsl 30)))

let qcheck_divmod_matches_int =
  QCheck.Test.make ~name:"divmod agrees with int division" ~count:500 arb_pair_of_ints
    (fun (a, d) ->
      let q, r = Bignum.divmod (Bignum.of_int a) (Bignum.of_int d) in
      Bignum.to_int q = a / d && Bignum.to_int r = a mod d)

let qcheck_mul_matches_int =
  QCheck.Test.make ~name:"mul agrees with int multiplication" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, c) -> Bignum.to_int (Bignum.mul (Bignum.of_int a) (Bignum.of_int c)) = a * c)

let qcheck_add_assoc =
  QCheck.Test.make ~name:"addition associative on random bignums" ~count:200
    QCheck.(triple small_nat small_nat small_nat)
    (fun (i, j, k) ->
      let rng = Util.Prng.create (Int64.of_int ((i * 1000003) + (j * 13) + k)) in
      let x = Bignum.random_bits rng 200
      and y = Bignum.random_bits rng 150
      and z = Bignum.random_bits rng 300 in
      Bignum.equal (Bignum.add x (Bignum.add y z)) (Bignum.add (Bignum.add x y) z))

let qcheck_divmod_identity_big =
  QCheck.Test.make ~name:"a = q*d + r on random bignums" ~count:200 QCheck.small_nat (fun i ->
      let rng = Util.Prng.create (Int64.of_int (i + 77)) in
      let a = Bignum.random_bits rng 400 in
      let d = Bignum.add Bignum.one (Bignum.random_bits rng 130) in
      let q, r = Bignum.divmod a d in
      Bignum.equal a (Bignum.add (Bignum.mul q d) r)
      && Bignum.compare r d < 0
      && Bignum.sign r >= 0)

let suite =
  [
    ("int roundtrip", `Quick, test_small_roundtrip);
    ("string roundtrip", `Quick, test_string_roundtrip);
    ("add/sub", `Quick, test_add_sub);
    ("mul", `Quick, test_mul);
    ("divmod identity", `Quick, test_divmod_identity);
    ("divmod signs", `Quick, test_divmod_signs);
    ("erem nonnegative", `Quick, test_erem_nonneg);
    ("gcd/lcm", `Quick, test_gcd_lcm);
    ("egcd bezout", `Quick, test_egcd_bezout);
    ("pow", `Quick, test_pow);
    ("shifts", `Quick, test_shifts);
    ("bits roundtrip", `Quick, test_bits_roundtrip);
    ("num_bits", `Quick, test_num_bits);
    ("random_bits range", `Quick, test_random_bits_range);
    QCheck_alcotest.to_alcotest qcheck_divmod_matches_int;
    QCheck_alcotest.to_alcotest qcheck_mul_matches_int;
    QCheck_alcotest.to_alcotest qcheck_add_assoc;
    QCheck_alcotest.to_alcotest qcheck_divmod_identity_big;
  ]

(* ---- additional edge cases ---- *)

let test_to_int_overflow () =
  let big_val = Bignum.pow Bignum.two 100 in
  Alcotest.(check bool) "to_int_opt None" true (Bignum.to_int_opt big_val = None);
  (match Bignum.to_int big_val with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check bool) "62-bit fits" true (Bignum.to_int_opt (Bignum.pow Bignum.two 61) <> None)

let test_of_string_errors () =
  List.iter
    (fun s ->
      match Bignum.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ ""; "-"; "12a3"; "--5"; " 5" ]

let test_division_by_zero () =
  match Bignum.divmod Bignum.one Bignum.zero with
  | _ -> Alcotest.fail "expected Division_by_zero"
  | exception Division_by_zero -> ()

let test_compare_total_order () =
  let vals = List.map Bignum.of_int [ -100; -1; 0; 1; 7; 100 ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          let c = Bignum.compare a b in
          Alcotest.(check bool) "order agrees with int order" true
            ((c < 0) = (i < j) && (c = 0) = (i = j)))
        vals)
    vals

let test_shift_right_to_zero () =
  Alcotest.(check bool) "shifted out" true (Bignum.is_zero (Bignum.shift_right (Bignum.of_int 255) 10))

let test_pow_negative_exponent () =
  match Bignum.pow Bignum.two (-1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let edge_suite =
  [
    ("to_int overflow", `Quick, test_to_int_overflow);
    ("of_string errors", `Quick, test_of_string_errors);
    ("division by zero", `Quick, test_division_by_zero);
    ("compare total order", `Quick, test_compare_total_order);
    ("shift right to zero", `Quick, test_shift_right_to_zero);
    ("pow negative exponent", `Quick, test_pow_negative_exponent);
  ]

let suite = suite @ edge_suite
