(* The pathmark command-line tool: embed, recognize, attack and inspect
   watermarked programs on both tracks, and regenerate the paper's
   experiments. *)

open Cmdliner

(* Unified exit codes (documented in README).  0 = success, 1 = generic
   failure, 2 = nothing to do / bad selection, 3 = recognition failed
   (no watermark, or not the expected one), 4 = fault-injection abort
   (the injected faults destroyed the artifact), 5 = store corruption,
   6 = unknown watermarking scheme name, 7 = analysis findings (the
   analyzer or audit gate surfaced diagnostics — distinct from 1 so CI
   can tell "the linter found something" from "the linter crashed"),
   8 = service unavailable (could not reach, or lost, a pathmark server
   within the deadline — retryable, unlike 1).
   Cmdliner owns 124-125 and its own usage errors. *)
let exit_recognition_failed = 3
let exit_fault_abort = 4
let exit_store_corruption = 5
let exit_unknown_scheme = 6
let exit_analysis_findings = 7
let exit_service_unavailable = 8

let or_store_corruption f =
  try f ()
  with Store.Registry.Corrupt msg | Store.Journal.Corrupt msg ->
    Printf.eprintf "store corruption: %s\n" msg;
    exit exit_store_corruption

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* ---- argument converters ----

   Proper Cmdliner convs so a malformed value is a usage error, not a
   [failwith] backtrace. *)

let int_list_conv =
  let parse s =
    if String.trim s = "" then Ok []
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match int_of_string_opt (String.trim x) with
            | Some v -> go (v :: acc) rest
            | None ->
                Error (`Msg (Printf.sprintf "invalid element %S (expected comma-separated integers)" x)))
      in
      go [] (String.split_on_char ',' s)
  in
  let print ppf l = Format.pp_print_string ppf (String.concat "," (List.map string_of_int l)) in
  Arg.conv ~docv:"I1,I2,..." (parse, print)

let bignum_conv =
  let parse s =
    match Bignum.of_string (String.trim s) with
    | w -> Ok w
    | exception _ -> Error (`Msg (Printf.sprintf "invalid watermark value %S (expected a decimal integer)" s))
  in
  Arg.conv ~docv:"W" (parse, Bignum.pp)

let bignum_list_conv =
  let parse s =
    if String.trim s = "" then Ok []
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match Bignum.of_string (String.trim x) with
            | w -> go (w :: acc) rest
            | exception _ ->
                Error (`Msg (Printf.sprintf "invalid fingerprint %S (expected a decimal integer)" x)))
      in
      go [] (String.split_on_char ',' s)
  in
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map Bignum.to_string l))
  in
  Arg.conv ~docv:"W1,W2,..." (parse, print)

(* ---- common options ---- *)

let key_t =
  Arg.(value & opt string "pathmark-default-key" & info [ "key" ] ~docv:"KEY" ~doc:"Watermark passphrase (secret).")

let bits_t = Arg.(value & opt int 128 & info [ "bits" ] ~docv:"N" ~doc:"Watermark width in bits.")

let input_t =
  Arg.(value & opt int_list_conv [] & info [ "input" ] ~docv:"I1,I2,..." ~doc:"Secret input sequence (comma-separated integers).")

let mark_t =
  Arg.(value & opt bignum_conv (Bignum.of_string "123456789123456789") & info [ "mark" ] ~docv:"W" ~doc:"Watermark value (decimal).")

let out_t = Arg.(value & opt string "out.bin" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic randomness seed.")

(* ---- scheme selection (lib/scheme) ---- *)

let scheme_t =
  Arg.(
    value
    & opt string "jwm"
    & info [ "scheme" ] ~docv:"NAME"
        ~doc:"Watermarking scheme by registry name (see $(b,pathmark schemes)); '+'-joined names compose, e.g. jwm+gwm.")

let resolve_scheme name =
  match Scheme.Builtin.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown scheme %s; registered: %s (compose same-track schemes with '+')\n" name
        (String.concat " " (Scheme.Builtin.names ()));
      exit exit_unknown_scheme

let require_vm_scheme name =
  let (module W) = resolve_scheme name in
  if W.caps.Scheme.Watermarker.track <> Scheme.Watermarker.Vm then begin
    Printf.eprintf "scheme %s does not run on the VM track\n" name;
    exit 1
  end;
  (module W : Scheme.Watermarker.WATERMARKER)

(* ---- fault injection (lib/fault) ---- *)

let inject_conv =
  let parse s = match Fault.Spec.parse_list s with Ok specs -> Ok specs | Error e -> Error (`Msg e) in
  let print ppf specs =
    Format.pp_print_string ppf (String.concat "," (List.map Fault.Spec.to_string specs))
  in
  Arg.conv ~docv:"NAME=RATE,..." (parse, print)

let inject_t =
  Arg.(
    value
    & opt inject_conv []
    & info [ "inject" ] ~docv:"NAME=RATE,..."
        ~doc:"Deterministic fault-injection plan, e.g. trace-noise=0.01 (see $(b,pathmark faults)).")

let fault_seed_t =
  Arg.(
    value
    & opt int 1
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed for the fault-injection PRNG substreams.")

let plan_of specs fault_seed = Fault.Inject.make ~seed:(Int64.of_int fault_seed) specs

let backend_conv =
  let parse = function
    | "interp" -> Ok `Interp
    | "compiled" -> Ok `Compiled
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S (expected interp or compiled)" s))
  in
  let print fmt b =
    Format.pp_print_string fmt (match b with `Interp -> "interp" | `Compiled -> "compiled")
  in
  Arg.conv (parse, print)

let backend_t =
  Arg.(
    value
    & opt backend_conv `Compiled
    & info [ "backend" ] ~docv:"interp|compiled"
        ~doc:
          "Stack-VM execution backend: the reference interpreter or the threaded-code compiler \
           (observationally equivalent; compiled is much faster).")

let streaming_t =
  Arg.(
    value & flag
    & info [ "streaming" ]
        ~doc:
          "Recognize in streaming mode: branch events fold into the recognizer as the program \
           runs, and the run stops early once the mark's redundancy margin clears the confidence \
           target.")

let print_partial (o : Jwm.Recognize.outcome) =
  let p = o.Jwm.Recognize.partial in
  Printf.printf "confidence %.3f (pieces %d, primes %d/%d, redundancy margin %d)\n"
    p.Jwm.Recognize.confidence p.Jwm.Recognize.pieces_recovered p.Jwm.Recognize.primes_covered
    p.Jwm.Recognize.primes_total p.Jwm.Recognize.redundancy_margin;
  Option.iter (fun d -> Printf.printf "diagnostic: %s\n" d) o.Jwm.Recognize.diagnostic

(* ---- VM track ---- *)

let load_vm path = Stackvm.Serialize.decode (read_file path)

let embed_vm source key mark bits pieces input out seed =
  let prog = Minic.To_stackvm.compile_source (read_file source) in
  let watermarked =
    Pathmark.watermark_vm ~seed:(Int64.of_int seed) ~key ~watermark:mark ~bits ~pieces ~input prog
  in
  write_file out (Stackvm.Serialize.encode watermarked);
  Printf.printf "embedded %d-bit watermark (%d pieces) into %s -> %s (%d -> %d bytes)\n" bits pieces
    source out
    (Stackvm.Serialize.size_in_bytes prog)
    (Stackvm.Serialize.size_in_bytes watermarked)

let embed_vm_cmd =
  let source = Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc" ~doc:"MiniC source file.") in
  let pieces = Arg.(value & opt int 40 & info [ "pieces" ] ~doc:"Number of redundant pieces.") in
  Cmd.v
    (Cmd.info "embed-vm" ~doc:"Compile a MiniC program and embed a bytecode-track watermark.")
    Term.(const embed_vm $ source $ key_t $ mark_t $ bits_t $ pieces $ input_t $ out_t $ seed_t)

let recognize_vm path key bits input backend streaming inject fault_seed =
  let plan = plan_of inject fault_seed in
  let bytes = read_file path in
  let bytes, artifact_faults =
    if Fault.Inject.is_empty plan then (bytes, 0)
    else Fault.Inject.artifact plan ~salt:("artifact:" ^ Filename.basename path) bytes
  in
  match Stackvm.Serialize.decode_opt bytes with
  | None ->
      Printf.printf "program undecodable after %d artifact fault(s); nothing recovered\n" artifact_faults;
      exit exit_fault_abort
  | Some prog ->
      let o =
        if not (Fault.Inject.is_empty plan) then begin
          (* recognize offline from the fault-injected branch stream *)
          let trace =
            Stackvm.Trace.capture ~fuel:200_000_000 ~want_snapshots:false ~backend prog ~input
          in
          let noisy, n = Fault.Inject.branches_buf plan ~salt:"trace" trace.Stackvm.Trace.events in
          if artifact_faults > 0 || n > 0 then
            Printf.printf "injected %d artifact fault(s), %d trace fault(s) [%s]\n" artifact_faults n
              (Fault.Inject.describe plan);
          Jwm.Recognize.recognize_branches ~passphrase:key ~watermark_bits:bits
            (Array.to_list (Stackvm.Trace.branches_of_buf noisy))
        end
        else if streaming then begin
          let o, halt =
            Jwm.Recognize.recognize_streaming ~passphrase:key ~watermark_bits:bits ~input prog
          in
          (match halt with
          | `Stopped_early ->
              Printf.printf "decided early: run stopped after %d steps\n" o.Jwm.Recognize.steps
          | `Completed -> ());
          o
        end
        else Jwm.Recognize.recognize ~backend ~passphrase:key ~watermark_bits:bits ~input prog
      in
      print_partial o;
      (match o.Jwm.Recognize.value with
      | Some w -> Printf.printf "fingerprint: %s\n" (Bignum.to_string w)
      | None ->
          Printf.printf "no watermark recovered\n";
          exit exit_recognition_failed)

let recognize_vm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Serialized VM program.") in
  Cmd.v
    (Cmd.info "recognize-vm" ~doc:"Recognize a bytecode-track watermark (blind).")
    Term.(
      const recognize_vm $ path $ key_t $ bits_t $ input_t $ backend_t $ streaming_t $ inject_t
      $ fault_seed_t)

let run_vm path input backend =
  let prog = load_vm path in
  let r =
    match backend with
    | `Interp -> Stackvm.Interp.run prog ~input
    | `Compiled -> Stackvm.Compile.run_program prog ~input
  in
  List.iter (Printf.printf "%d\n") r.Stackvm.Interp.outputs;
  match r.Stackvm.Interp.outcome with
  | Stackvm.Interp.Finished v -> Printf.printf "finished: %d (%d steps)\n" v r.Stackvm.Interp.steps
  | Stackvm.Interp.Trapped { reason; _ } ->
      Printf.printf "trapped: %s\n" reason;
      exit 1
  | Stackvm.Interp.Out_of_fuel ->
      Printf.printf "out of fuel\n";
      exit 1

let run_vm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Serialized VM program.") in
  Cmd.v
    (Cmd.info "run-vm" ~doc:"Execute a serialized VM program.")
    Term.(const run_vm $ path $ input_t $ backend_t)

let attack_vm path name out seed =
  match List.assoc_opt name Vmattacks.Attacks.all with
  | None ->
      Printf.printf "unknown attack %s; available:\n" name;
      List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Vmattacks.Attacks.all;
      exit 1
  | Some attack ->
      let prog = load_vm path in
      let attacked = attack (Util.Prng.create (Int64.of_int seed)) prog in
      write_file out (Stackvm.Serialize.encode attacked);
      Printf.printf "applied %s: %s -> %s\n" name path out

let attack_vm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Serialized VM program.") in
  let attack_name = Arg.(required & pos 1 (some string) None & info [] ~docv:"ATTACK" ~doc:"Attack name (see list-attacks).") in
  Cmd.v
    (Cmd.info "attack-vm" ~doc:"Apply a distortive attack to a VM program.")
    Term.(const attack_vm $ path $ attack_name $ out_t $ seed_t)

let list_attacks () =
  Printf.printf "bytecode-track distortive attacks:\n";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Vmattacks.Attacks.all;
  Printf.printf "native-track attacks: noop-insertion branch-inversion double-watermark bypass reroute\n"

let list_attacks_cmd = Cmd.v (Cmd.info "list-attacks" ~doc:"List the attack suites.") Term.(const list_attacks $ const ())

let faults () =
  Printf.printf "deterministic fault injection (pass --inject NAME=RATE[,NAME=RATE...] --fault-seed N):\n";
  List.iter (fun (name, doc) -> Printf.printf "  %-13s %s\n" name doc) Fault.Spec.all_names

let faults_cmd =
  Cmd.v
    (Cmd.info "faults" ~doc:"List the fault-injection spec names accepted by --inject.")
    Term.(const faults $ const ())

let trace_vm path input out =
  let prog = load_vm path in
  let trace = Stackvm.Trace.capture ~want_snapshots:false prog ~input in
  let bits = Stackvm.Trace.bitstring trace in
  write_file out (Stackvm.Trace.save trace);
  Printf.printf "traced %d branch events (%d instructions executed) -> %s\n"
    (Array.length trace.Stackvm.Trace.branches)
    trace.Stackvm.Trace.result.Stackvm.Interp.steps out;
  Printf.printf "bit-string prefix: %s...\n"
    (let s = Util.Bitstring.to_string bits in
     String.sub s 0 (min 64 (String.length s)))

let trace_vm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Serialized VM program.") in
  Cmd.v
    (Cmd.info "trace-vm" ~doc:"Trace a VM program on an input and save the branch events.")
    Term.(const trace_vm $ path $ input_t $ out_t)

let recognize_trace path key bits_width inject fault_seed =
  let plan = plan_of inject fault_seed in
  let raw = read_file path in
  let raw, artifact_faults =
    if Fault.Inject.is_empty plan then (raw, 0)
    else Fault.Inject.artifact plan ~salt:("artifact:" ^ Filename.basename path) raw
  in
  let events, salvage = Stackvm.Trace.salvage_branches raw in
  Option.iter (Printf.printf "trace salvage: %s\n") salvage;
  let events, trace_faults =
    if Fault.Inject.is_empty plan then (events, 0) else Fault.Inject.branches plan ~salt:"trace" events
  in
  if artifact_faults > 0 || trace_faults > 0 then
    Printf.printf "injected %d artifact fault(s), %d trace fault(s) [%s]\n" artifact_faults trace_faults
      (Fault.Inject.describe plan);
  let o = Jwm.Recognize.recognize_branches ~passphrase:key ~watermark_bits:bits_width events in
  print_partial o;
  match o.Jwm.Recognize.value with
  | Some w -> Printf.printf "fingerprint: %s\n" (Bignum.to_string w)
  | None ->
      Printf.printf "no watermark recovered from trace\n";
      exit exit_recognition_failed

let recognize_trace_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Saved trace file.") in
  Cmd.v
    (Cmd.info "recognize-trace" ~doc:"Recognize a watermark from a saved trace file (offline).")
    Term.(const recognize_trace $ path $ key_t $ bits_t $ inject_t $ fault_seed_t)

(* ---- generic scheme commands (lib/scheme registry) ---- *)

let schemes () =
  Scheme.Builtin.ensure ();
  List.iter
    (fun (module W : Scheme.Watermarker.WATERMARKER) ->
      let c = W.caps in
      Printf.printf "%-4s track=%-6s max_bits=%-9s blind=%b locatability=%.2f resilience_floor=%.2f\n"
        W.name
        (Scheme.Watermarker.track_to_string c.Scheme.Watermarker.track)
        (if c.Scheme.Watermarker.max_bits = 0 then "unbounded"
         else string_of_int c.Scheme.Watermarker.max_bits)
        c.Scheme.Watermarker.blind c.Scheme.Watermarker.locatability
        c.Scheme.Watermarker.resilience_floor;
      Printf.printf "     stealth: %s\n" c.Scheme.Watermarker.stealth;
      Printf.printf "     attacks: %s\n" c.Scheme.Watermarker.attack_surface)
    (Scheme.Builtin.all ());
  Printf.printf "compose same-track schemes with '+', e.g. --scheme jwm+gwm\n"

let schemes_cmd =
  Cmd.v
    (Cmd.info "schemes" ~doc:"List the registered watermarking schemes and their capability metadata.")
    Term.(const schemes $ const ())

let carrier_bytes = function
  | Scheme.Watermarker.Vm_program p -> Stackvm.Serialize.encode p
  | Scheme.Watermarker.Native_binary b -> Nativesim.Binary.encode b
  | Scheme.Watermarker.Native_source a -> Nativesim.Binary.encode (Nativesim.Asm.assemble a)

let embed_generic source scheme_name key mark bits redundancy input out aux_out seed =
  let (module W) = resolve_scheme scheme_name in
  let src = read_file source in
  let carrier =
    match W.caps.Scheme.Watermarker.track with
    | Scheme.Watermarker.Vm -> Scheme.Watermarker.Vm_program (Minic.To_stackvm.compile_source src)
    | Scheme.Watermarker.Native ->
        Scheme.Watermarker.Native_source (Minic.To_native.compile_source src)
  in
  let spec =
    Scheme.Watermarker.spec ~seed:(Int64.of_int seed) ~redundancy ~key ~bits ~input ()
  in
  let e = W.embed mark spec carrier in
  write_file out (carrier_bytes e.Scheme.Watermarker.carrier);
  Printf.printf "embedded %d-bit watermark under scheme %s into %s -> %s (%d -> %d bytes)\n" bits
    W.name source out e.Scheme.Watermarker.bytes_before e.Scheme.Watermarker.bytes_after;
  Printf.printf "detail: %s\n" e.Scheme.Watermarker.detail;
  if e.Scheme.Watermarker.aux <> "" then begin
    match aux_out with
    | Some f ->
        write_file f e.Scheme.Watermarker.aux;
        Printf.printf "aux -> %s (required for recognition)\n" f
    | None -> Printf.printf "aux: %s (pass back via --aux when recognizing)\n" e.Scheme.Watermarker.aux
  end

let embed_cmd =
  let source = Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc" ~doc:"MiniC source file.") in
  let redundancy =
    Arg.(value & opt int 40 & info [ "redundancy" ] ~docv:"N" ~doc:"Redundant copies/pieces to insert (Jwm pieces, Gwm trace repetitions).")
  in
  let aux_out =
    Arg.(value & opt (some string) None & info [ "aux-out" ] ~docv:"FILE" ~doc:"Write the scheme's recognition hint (non-blind schemes) to FILE.")
  in
  Cmd.v
    (Cmd.info "embed" ~doc:"Compile a MiniC program and embed a watermark under a named scheme (VM or native track, per the scheme's capabilities).")
    Term.(
      const embed_generic $ source $ scheme_t $ key_t $ mark_t $ bits_t $ redundancy $ input_t $ out_t
      $ aux_out $ seed_t)

let recognize_generic path scheme_name key bits input aux aux_file backend streaming inject
    fault_seed =
  let (module W) = resolve_scheme scheme_name in
  let plan = plan_of inject fault_seed in
  let bytes = read_file path in
  let bytes, artifact_faults =
    if Fault.Inject.is_empty plan then (bytes, 0)
    else Fault.Inject.artifact plan ~salt:("artifact:" ^ Filename.basename path) bytes
  in
  let carrier =
    match W.caps.Scheme.Watermarker.track with
    | Scheme.Watermarker.Vm -> (
        match Stackvm.Serialize.decode_opt bytes with
        | Some p -> Scheme.Watermarker.Vm_program p
        | None ->
            Printf.printf "program undecodable after %d artifact fault(s); nothing recovered\n"
              artifact_faults;
            exit exit_fault_abort)
    | Scheme.Watermarker.Native -> (
        match Nativesim.Binary.decode bytes with
        | b -> Scheme.Watermarker.Native_binary b
        | exception _ ->
            Printf.printf "binary undecodable after %d artifact fault(s); nothing recovered\n"
              artifact_faults;
            exit exit_fault_abort)
  in
  let aux = match aux_file with Some f -> Some (read_file f) | None -> aux in
  let spec = Scheme.Watermarker.spec ~key ~bits ~input () in
  let o =
    match (Fault.Inject.is_empty plan, W.recognize_branches, carrier) with
    | false, Some recognize_branches, Scheme.Watermarker.Vm_program prog ->
        (* recognize offline from the fault-injected branch stream *)
        let trace =
          Stackvm.Trace.capture ~fuel:200_000_000 ~want_snapshots:false ~backend prog ~input
        in
        let noisy, n = Fault.Inject.branches_buf plan ~salt:"trace" trace.Stackvm.Trace.events in
        if artifact_faults > 0 || n > 0 then
          Printf.printf "injected %d artifact fault(s), %d trace fault(s) [%s]\n" artifact_faults n
            (Fault.Inject.describe plan);
        recognize_branches spec (Array.to_list (Stackvm.Trace.branches_of_buf noisy))
    | _ -> (
        match (streaming, W.stream, carrier) with
        | true, Some mk, Scheme.Watermarker.Vm_program prog ->
            (* push-based recognition over a live compiled run, stopping as
               soon as the scheme decides *)
            let s = mk spec in
            let code = Stackvm.Compile.of_program prog in
            (match
               Stackvm.Compile.run_streaming ~fuel:200_000_000 code ~input
                 ~push:s.Scheme.Watermarker.push
             with
            | `Stopped steps -> Printf.printf "decided early: run stopped after %d steps\n" steps
            | `Completed _ -> ());
            s.Scheme.Watermarker.finish ()
        | true, _, _ ->
            Printf.printf "scheme %s cannot recognize in streaming mode\n" W.name;
            exit 1
        | false, _, _ -> W.recognize ?aux spec carrier)
  in
  Printf.printf "confidence %.3f\n" o.Scheme.Watermarker.confidence;
  Printf.printf "detail: %s\n" o.Scheme.Watermarker.detail;
  match o.Scheme.Watermarker.value with
  | Some w -> Printf.printf "fingerprint: %s\n" (Bignum.to_string w)
  | None ->
      Printf.printf "no watermark recovered\n";
      exit exit_recognition_failed

let recognize_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Watermarked artifact (serialized VM program or native binary, per the scheme's track).") in
  let aux =
    Arg.(value & opt (some string) None & info [ "aux" ] ~docv:"TEXT" ~doc:"Recognition hint printed by $(b,pathmark embed) (non-blind schemes).")
  in
  let aux_file =
    Arg.(value & opt (some file) None & info [ "aux-file" ] ~docv:"FILE" ~doc:"Read the recognition hint from FILE (see $(b,--aux-out)).")
  in
  Cmd.v
    (Cmd.info "recognize" ~doc:"Recognize a watermark under a named scheme.")
    Term.(
      const recognize_generic $ path $ scheme_t $ key_t $ bits_t $ input_t $ aux $ aux_file
      $ backend_t $ streaming_t $ inject_t $ fault_seed_t)

(* ---- native track ---- *)

let embed_native source mark bits input out seed =
  let prog = Minic.To_native.compile_source (read_file source) in
  let report =
    Pathmark.watermark_native ~seed:(Int64.of_int seed) ~watermark:mark ~bits ~training_input:input prog
  in
  write_file out (Nativesim.Binary.encode report.Nwm.Embed.binary);
  Printf.printf "embedded %d-bit watermark into %s -> %s\n" bits source out;
  Printf.printf "begin=0x%x end=0x%x tamper_cells=%d size %d -> %d bytes\n" report.Nwm.Embed.begin_addr
    report.Nwm.Embed.end_addr report.Nwm.Embed.tamper_cells report.Nwm.Embed.bytes_before
    report.Nwm.Embed.bytes_after

let embed_native_cmd =
  let source = Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc" ~doc:"MiniC source file.") in
  Cmd.v
    (Cmd.info "embed-native" ~doc:"Compile a MiniC program and embed a branch-function watermark.")
    Term.(const embed_native $ source $ mark_t $ bits_t $ input_t $ out_t $ seed_t)

let extract_native path begin_addr end_addr input tracer =
  let bin = Nativesim.Binary.decode (read_file path) in
  let kind = if tracer = "simple" then Nwm.Extract.Simple else Nwm.Extract.Smart in
  match Pathmark.extract_native ~kind bin ~begin_addr ~end_addr ~input with
  | Some w -> Printf.printf "fingerprint: %s\n" (Bignum.to_string w)
  | None ->
      Printf.printf "no watermark extracted\n";
      exit exit_recognition_failed

let extract_native_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY" ~doc:"Native binary file.") in
  let begin_addr = Arg.(required & opt (some int) None & info [ "begin" ] ~docv:"ADDR" ~doc:"Watermark region start.") in
  let end_addr = Arg.(required & opt (some int) None & info [ "end" ] ~docv:"ADDR" ~doc:"Watermark region end.") in
  let tracer = Arg.(value & opt string "smart" & info [ "tracer" ] ~docv:"simple|smart" ~doc:"Tracer kind.") in
  Cmd.v
    (Cmd.info "extract-native" ~doc:"Extract a branch-function watermark by single-stepping.")
    Term.(const extract_native $ path $ begin_addr $ end_addr $ input_t $ tracer)

let run_native path input =
  let bin = Nativesim.Binary.decode (read_file path) in
  let r = Nativesim.Machine.run bin ~input in
  List.iter (Printf.printf "%d\n") r.Nativesim.Machine.outputs;
  match r.Nativesim.Machine.outcome with
  | Nativesim.Machine.Halted -> Printf.printf "halted (%d steps)\n" r.Nativesim.Machine.steps
  | Nativesim.Machine.Trapped { reason; addr } ->
      Printf.printf "trapped at 0x%x: %s\n" addr reason;
      exit 1
  | Nativesim.Machine.Out_of_fuel ->
      Printf.printf "out of fuel\n";
      exit 1

let run_native_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY" ~doc:"Native binary file.") in
  Cmd.v (Cmd.info "run-native" ~doc:"Execute a native binary.") Term.(const run_native $ path $ input_t)

let disasm path =
  let bin = Nativesim.Binary.decode (read_file path) in
  Format.printf "%a" Nativesim.Disasm.pp_listing bin

let disasm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY" ~doc:"Native binary file.") in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a native binary.") Term.(const disasm $ path)

(* ---- batch engine ---- *)

let builtin_workloads =
  [
    ("caffeine", Workloads.Caffeine.suite);
    ("jesslite", Workloads.Jesslite.engine);
  ]

let batch source workload scheme key bits pieces input fingerprints count mark jobs cache_spec
    events_file out_dir verify retries backoff_ms deadline_ms breaker fuel_escalation backend inject
    fault_seed seed quiet =
  ignore (require_vm_scheme scheme);
  let workload_entry = List.assoc_opt workload builtin_workloads in
  let program, default_input, host_name =
    match source with
    | Some path -> (Minic.To_stackvm.compile_source (read_file path), [], path)
    | None -> (
        match workload_entry with
        | Some w -> (Workloads.Workload.vm_program w, w.Workloads.Workload.input, w.Workloads.Workload.name)
        | None ->
            Printf.printf "unknown workload %s; available: %s\n" workload
              (String.concat " " (List.map fst builtin_workloads));
            exit 1)
  in
  let input = if input = [] then default_input else input in
  let fingerprints =
    if fingerprints <> [] then fingerprints
    else List.init count (fun i -> Bignum.add mark (Bignum.of_int i))
  in
  let limit = Bignum.shift_left (Bignum.of_int 1) bits in
  List.iter
    (fun fp ->
      if Bignum.compare fp limit >= 0 then begin
        Printf.printf "fingerprint %s does not fit in %d bits; raise --bits or pass smaller --mark/--fingerprints\n"
          (Bignum.to_string fp) bits;
        exit 1
      end)
    fingerprints;
  let cache, cache_store =
    match cache_spec with
    | "none" -> (None, None)
    | "mem" -> (Some (Engine.Cache.create ()), None)
    | spec when String.length spec > 6 && String.sub spec 0 6 = "store:" ->
        let root = String.sub spec 6 (String.length spec - 6) in
        let store = or_store_corruption (fun () -> Store.Registry.open_store ~root ()) in
        (Some (Engine.Cache.create ~store ()), Some store)
    | dir -> (Some (Engine.Cache.create ~spill_dir:dir ()), None)
  in
  let events_oc = Option.map open_out events_file in
  let events = Engine.Events.create ?sink:(Option.map Engine.Events.json_sink events_oc) () in
  let job_specs =
    List.mapi
      (fun i fp ->
        Engine.Job.vm_embed ~label:("fp-" ^ Bignum.to_string fp) ~scheme
          ~seed:(Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (i + 1)) 0x9E37_79B9_7F4A_7C15L))
          ~key ~bits ~pieces ~fingerprint:fp ~input program)
      fingerprints
  in
  let policy =
    {
      Engine.Batch.default_policy with
      Engine.Batch.retries;
      backoff_ms;
      deadline_ms;
      breaker_threshold = breaker;
      fuel_escalation;
    }
  in
  let plan = plan_of inject fault_seed in
  let run_jobs specs =
    Engine.Batch.run ~domains:jobs ~policy ~inject:plan ?cache ~events ~backend specs
  in
  Printf.printf "batch: %d embed jobs on %s, %d domain(s), cache %s%s\n%!" (List.length job_specs)
    host_name jobs cache_spec
    (if Fault.Inject.is_empty plan then "" else ", injecting " ^ Fault.Inject.describe plan);
  let results = run_jobs job_specs in
  let failed = List.filter (fun r -> not (Engine.Batch.ok r)) results in
  Option.iter
    (fun dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (r : Engine.Batch.result) ->
          match r.Engine.Batch.outcome with
          | Engine.Batch.Vm_embedded { program = bytes; _ } ->
              write_file (Filename.concat dir (r.Engine.Batch.job.Engine.Job.label ^ ".svm")) bytes
          | _ -> ())
        results)
    out_dir;
  let verify_failures =
    if not verify then 0
    else begin
      let recog_jobs =
        List.concat
          (List.map2
             (fun fp (r : Engine.Batch.result) ->
               match r.Engine.Batch.outcome with
               | Engine.Batch.Vm_embedded { program = bytes; _ } ->
                   [
                     Engine.Job.vm_recognize ~label:("verify-" ^ Bignum.to_string fp) ~scheme
                       ~expected:fp ~key ~bits ~input (Stackvm.Serialize.decode bytes);
                   ]
               | _ -> [])
             fingerprints results)
      in
      let vresults = run_jobs recog_jobs in
      List.length (List.filter (fun r -> not (Engine.Batch.ok r)) vresults)
    end
  in
  if not quiet then print_string (Engine.Events.report events);
  Option.iter
    (fun c ->
      let s = Engine.Cache.stats c in
      Printf.printf "cache: %d hits, %d misses, %d disk loads, %d store loads, %d evictions\n"
        s.Engine.Cache.hits s.Engine.Cache.misses s.Engine.Cache.disk_loads s.Engine.Cache.store_loads
        s.Engine.Cache.evictions)
    cache;
  Option.iter Store.Registry.close cache_store;
  Option.iter close_out events_oc;
  if failed <> [] || verify_failures > 0 then begin
    Printf.printf "batch FAILED: %d embed failures, %d verification failures\n" (List.length failed)
      verify_failures;
    exit (if Fault.Inject.is_empty plan then 1 else exit_fault_abort)
  end
  else Printf.printf "batch ok: %d fingerprints embedded%s\n" (List.length results)
         (if verify then " and verified" else "")

let batch_cmd =
  let source =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SOURCE.mc" ~doc:"MiniC source file (omit to use $(b,--workload).)")
  in
  let workload =
    Arg.(value & opt string "caffeine" & info [ "workload" ] ~docv:"NAME" ~doc:"Built-in host workload (caffeine, jesslite) when no source file is given.")
  in
  let fingerprints =
    Arg.(value & opt bignum_list_conv [] & info [ "fingerprints" ] ~docv:"W1,W2,..." ~doc:"Explicit fingerprint list (decimal).")
  in
  let count =
    Arg.(value & opt int 8 & info [ "count" ] ~docv:"N" ~doc:"Number of fingerprints to derive from $(b,--mark) when $(b,--fingerprints) is not given.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker-domain count (1 = sequential).")
  in
  let cache =
    Arg.(value & opt string "mem" & info [ "cache" ] ~docv:"none|mem|DIR|store:DIR" ~doc:"Result/trace cache: disabled, in-memory, spilled to DIR, or backed by the persistent registry at DIR ($(b,store:DIR)).")
  in
  let events_file =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc:"Write the JSON-lines event stream to FILE.")
  in
  let out_dir =
    Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR" ~doc:"Write each watermarked program to DIR/<label>.svm.")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Recognize each embedded fingerprint after the batch and fail on mismatch.")
  in
  let retries =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc:"Bounded retries per failing job.")
  in
  let backoff_ms =
    Arg.(value & opt float 0.0 & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Base delay of the deterministic exponential retry backoff (0 disables sleeping).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Wall-clock budget for the batch; jobs starting past it fail fast.")
  in
  let breaker =
    Arg.(value & opt int 0 & info [ "breaker" ] ~docv:"K" ~doc:"Circuit breaker: short-circuit a job spec after K consecutive crash-class failures (0 disables).")
  in
  let fuel_escalation =
    Arg.(value & opt float 1.0 & info [ "fuel-escalation" ] ~docv:"F" ~doc:"Scale bounded fuel budgets by F on every retry.")
  in
  let pieces = Arg.(value & opt int 40 & info [ "pieces" ] ~doc:"Number of redundant pieces per fingerprint.") in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the human batch report.") in
  Cmd.v
    (Cmd.info "batch" ~doc:"Embed many fingerprints into one host program in parallel (the fleet-fingerprinting engine).")
    Term.(
      const batch $ source $ workload $ scheme_t $ key_t $ bits_t $ pieces $ input_t $ fingerprints
      $ count $ mark_t $ jobs $ cache $ events_file $ out_dir $ verify $ retries $ backoff_ms
      $ deadline_ms $ breaker $ fuel_escalation $ backend_t $ inject_t $ fault_seed_t $ seed_t $ quiet)

(* ---- static analysis: the stealth linter ---- *)

let analyzer_workloads =
  Workloads.Spec.all @ [ Workloads.Caffeine.suite ] @ Workloads.Caffeine.kernels
  @ [ Workloads.Jesslite.engine ]

let analyze files native workload all_workloads scheme json =
  if files = [] && workload = None && not all_workloads then begin
    Printf.printf "nothing to analyze: pass a file, --workload NAME or --all-workloads\n";
    exit 2
  end;
  (* --scheme resolves the registry entry and narrows the sweep to the
     locator passes its capability metadata declares (composites union
     their members') *)
  let scheme_passes =
    Option.map
      (fun name ->
        let (module W : Scheme.Watermarker.WATERMARKER) = resolve_scheme name in
        let declared = W.caps.Scheme.Watermarker.locator_passes in
        let vm_passes =
          List.filter (fun p -> List.mem p Analysis.Locator.known_passes) declared
        in
        (vm_passes, List.mem "nlint" declared))
      scheme
  in
  let want_vm = match scheme_passes with None -> true | Some (vm, _) -> vm <> [] in
  let want_native = match scheme_passes with None -> true | Some (_, n) -> n in
  let vm_diags prog =
    match scheme_passes with
    | Some (vm_passes, _) when vm_passes <> [] ->
        (Analysis.Locator.run ~passes:vm_passes prog).Analysis.Locator.diags
    | _ -> Analysis.Vmlint.lint prog
  in
  let events =
    Engine.Events.create ?sink:(if json then Some (Engine.Events.json_sink stdout) else None) ()
  in
  let total = ref 0 in
  let report label diags =
    total := !total + List.length diags;
    if not json then Printf.printf "%s: %d finding(s)\n" label (List.length diags);
    List.iter
      (fun (d : Analysis.Diag.t) ->
        if not json then Printf.printf "  %s\n" (Analysis.Diag.to_string d);
        Engine.Events.emit events
          (Engine.Events.Diag
             {
               rule = d.Analysis.Diag.rule;
               location = Analysis.Diag.location_string d;
               message = d.Analysis.Diag.message;
             }))
      diags
  in
  (* Histogram corpus: the clean built-in binaries, leave-one-out when the
     subject is itself a built-in workload. *)
  let corpus_for ?exclude () =
    List.filter_map
      (fun (w : Workloads.Workload.t) ->
        if exclude = Some w.Workloads.Workload.name then None
        else Some (Analysis.Histogram.of_binary (Workloads.Workload.native_binary w)))
      analyzer_workloads
  in
  let lint_workload (w : Workloads.Workload.t) =
    let name = w.Workloads.Workload.name in
    if want_vm then report (name ^ " (vm)") (vm_diags (Workloads.Workload.vm_program w));
    if want_native then
      report (name ^ " (native)")
        (Analysis.Nlint.lint ~corpus:(corpus_for ~exclude:name ()) (Workloads.Workload.native_binary w))
  in
  List.iter
    (fun path ->
      if native then
        report path
          (Analysis.Nlint.lint ~corpus:(corpus_for ()) (Nativesim.Binary.decode (read_file path)))
      else report path (vm_diags (load_vm path)))
    files;
  (match workload with
  | None -> ()
  | Some name -> (
      match
        List.find_opt (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name = name) analyzer_workloads
      with
      | Some w -> lint_workload w
      | None ->
          Printf.printf "unknown workload %s; available: %s\n" name
            (String.concat " "
               (List.map (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name) analyzer_workloads));
          exit 1));
  if all_workloads then List.iter lint_workload analyzer_workloads;
  if not json then Printf.printf "%d finding(s) total\n" !total;
  if !total > 0 then exit exit_analysis_findings

let analyze_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Serialized VM program (or native binary with $(b,--native)).")
  in
  let native = Arg.(value & flag & info [ "native" ] ~doc:"Treat positional files as native binaries.") in
  let workload =
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc:"Lint a built-in workload on both tracks.")
  in
  let all_workloads =
    Arg.(value & flag & info [ "all-workloads" ] ~doc:"Lint every built-in workload on both tracks (the CI clean gate).")
  in
  let scheme =
    Arg.(
      value
      & opt (some string) None
      & info [ "scheme" ] ~docv:"NAME"
          ~doc:"Narrow the sweep to the locator passes this registered scheme declares (track-aware; '+'-joined names union their members' passes).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON-lines diagnostic events on stdout instead of human output.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the stealth linter: surface the static artifacts a watermark embedding leaves behind. Exits 7 when any diagnostic fires (1 is reserved for analyzer errors).")
    Term.(const analyze $ files $ native $ workload $ all_workloads $ scheme $ json)

(* ---- audit: the per-scheme stealth scorecard ---- *)

let default_audit_schemes = [ "jwm"; "nwm"; "gwm"; "jwm+gwm" ]

let audit schemes workload_names all_workloads jobs bits seed json no_gate =
  let schemes = if schemes = [] then default_audit_schemes else schemes in
  (* resolve up front so an unknown name is exit 6, not a failed job *)
  List.iter (fun s -> ignore (resolve_scheme s)) schemes;
  let workloads =
    if all_workloads then List.map snd builtin_workloads
    else if workload_names = [] then [ Workloads.Caffeine.suite ]
    else
      List.map
        (fun name ->
          match
            List.find_opt
              (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name = name)
              analyzer_workloads
          with
          | Some w -> w
          | None ->
              Printf.printf "unknown workload %s; available: %s\n" name
                (String.concat " "
                   (List.map (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name) analyzer_workloads));
              exit 1)
        workload_names
  in
  let card =
    Audit.Scorecard.run ~domains:jobs ~seed:(Int64.of_int seed) ~bits ~schemes ~workloads ()
  in
  if json then print_string (Audit.Scorecard.to_json card)
  else print_string (Audit.Scorecard.render card);
  if (not (Audit.Scorecard.gate_ok card)) && not no_gate then exit exit_analysis_findings

let audit_cmd =
  let schemes =
    Arg.(
      value & opt_all string []
      & info [ "scheme" ] ~docv:"NAME"
          ~doc:"Scheme to audit (repeatable; '+'-joined names compose). Defaults to jwm, nwm, gwm and jwm+gwm.")
  in
  let workloads =
    Arg.(
      value & opt_all string []
      & info [ "workload" ] ~docv:"NAME" ~doc:"Workload to audit on (repeatable). Defaults to caffeine.")
  in
  let all_workloads =
    Arg.(value & flag & info [ "all-workloads" ] ~doc:"Audit every built-in batch workload.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the audit batch.")
  in
  let bits_t = Arg.(value & opt int 16 & info [ "bits" ] ~docv:"N" ~doc:"Fingerprint width in bits.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the scorecard as JSON.") in
  let no_gate =
    Arg.(
      value & flag
      & info [ "no-gate" ]
          ~doc:"Report only: do not fail (exit 7) when a scheme exceeds its declared locatability or the locator flags clean code.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Embed each scheme into clean workloads and score how much of the mark the static locator finds, gated against each scheme's declared attack surface. Exits 7 on a gate violation.")
    Term.(const audit $ schemes $ workloads $ all_workloads $ jobs $ bits_t $ seed_t $ json $ no_gate)

(* ---- experiments ---- *)

let experiment which =
  match which with
  | "f5" -> Experiments.Fig5.print (Experiments.Fig5.run ())
  | "f8a" | "f8b" ->
      let cost = Experiments.Fig8.run_cost () in
      if which = "f8a" then Experiments.Fig8.print_a cost else Experiments.Fig8.print_b cost
  | "f8c" -> Experiments.Fig8.print_c (Experiments.Fig8.run_c ())
  | "f8d" -> Experiments.Fig8.print_d (Experiments.Fig8.run_d ())
  | "f9a" | "f9b" ->
      let t = Experiments.Fig9.run () in
      if which = "f9a" then Experiments.Fig9.print_a t else Experiments.Fig9.print_b t
  | "tj" -> Experiments.Tables.print_java (Experiments.Tables.run_java ())
  | "tn" -> Experiments.Tables.print_native (Experiments.Tables.run_native ())
  | "abl" -> Experiments.Ablations.print (Experiments.Ablations.run ())
  | "absa" -> Experiments.Abl_sa.print (Experiments.Abl_sa.run ())
  | "abfi" -> Experiments.Abl_fi.print (Experiments.Abl_fi.run ())
  | "dwm" -> Experiments.Dwm.print (Experiments.Dwm.run ())
  | "all" ->
      Experiments.Fig5.print (Experiments.Fig5.run ());
      let cost = Experiments.Fig8.run_cost () in
      Experiments.Fig8.print_a cost;
      Experiments.Fig8.print_b cost;
      Experiments.Fig8.print_c (Experiments.Fig8.run_c ());
      Experiments.Fig8.print_d (Experiments.Fig8.run_d ());
      let f9 = Experiments.Fig9.run () in
      Experiments.Fig9.print_a f9;
      Experiments.Fig9.print_b f9;
      Experiments.Tables.print_java (Experiments.Tables.run_java ());
      Experiments.Tables.print_native (Experiments.Tables.run_native ());
      Experiments.Ablations.print (Experiments.Ablations.run ());
      Experiments.Abl_sa.print (Experiments.Abl_sa.run ());
      Experiments.Abl_fi.print (Experiments.Abl_fi.run ());
      Experiments.Dwm.print (Experiments.Dwm.run ())
  | other ->
      Printf.printf "unknown experiment %s (use f5 f8a f8b f8c f8d f9a f9b tj tn abl absa abfi dwm all)\n" other;
      exit 1

let experiment_cmd =
  let which = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id: f5 f8a f8b f8c f8d f9a f9b tj tn abl absa abfi dwm all.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper.")
    Term.(const experiment $ which)

(* ---- persistent registry (lib/store) ---- *)

let kind_conv =
  let parse s =
    match Store.Artifact.kind_of_string (String.trim s) with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "invalid artifact kind %S (expected %s)" s
                (String.concat ", " (List.map Store.Artifact.kind_to_string Store.Artifact.all_kinds))))
  in
  let print ppf k = Format.pp_print_string ppf (Store.Artifact.kind_to_string k) in
  Arg.conv ~docv:"KIND" (parse, print)

let root_t =
  Arg.(
    value
    & opt string "pathmark-store"
    & info [ "root" ] ~docv:"DIR" ~doc:"Registry root directory (created if missing).")

let kind_t =
  Arg.(
    value
    & opt kind_conv Store.Artifact.Vm_program
    & info [ "kind" ] ~docv:"KIND" ~doc:"Artifact kind: vm, native, trace, key, report, cache.")

let with_store ?(fsync = true) root f =
  or_store_corruption (fun () ->
      let store = Store.Registry.open_store ~fsync ~root () in
      Fun.protect ~finally:(fun () -> Store.Registry.close store) (fun () -> f store))

let print_recovery store =
  let r = Store.Registry.recovery store in
  if r.Store.Registry.truncated_bytes > 0 || r.Store.Registry.skipped > 0 then
    Printf.printf "recovery: replayed %d record(s), truncated %d torn tail byte(s), skipped %d undecodable\n"
      r.Store.Registry.replayed r.Store.Registry.truncated_bytes r.Store.Registry.skipped

let store_put root kind artifact_key label file =
  with_store root (fun store ->
      print_recovery store;
      let payload = read_file file in
      let key =
        match artifact_key with Some k -> k | None -> Digest.to_hex (Digest.string payload)
      in
      let entry = Store.Registry.put store ~kind ~key ?label payload in
      Printf.printf "stored %s %s (%d bytes, seq %d)\n"
        (Store.Artifact.kind_to_string entry.Store.Artifact.kind)
        entry.Store.Artifact.key entry.Store.Artifact.size entry.Store.Artifact.seq)

let store_put_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Payload file.") in
  let artifact_key =
    Arg.(value & opt (some string) None & info [ "artifact-key" ] ~docv:"KEY" ~doc:"Registry key (defaults to the payload's content digest).")
  in
  let label = Arg.(value & opt (some string) None & info [ "label" ] ~docv:"TEXT" ~doc:"Cosmetic label.") in
  Cmd.v
    (Cmd.info "put" ~doc:"Store a file in the registry.")
    Term.(const store_put $ root_t $ kind_t $ artifact_key $ label $ file)

let store_get root kind key out =
  with_store root (fun store ->
      print_recovery store;
      match Store.Registry.get store ~kind ~key with
      | Ok (payload, entry) ->
          write_file out payload;
          Printf.printf "%s %s -> %s (%d bytes)\n"
            (Store.Artifact.kind_to_string kind)
            entry.Store.Artifact.key out entry.Store.Artifact.size
      | Error `Missing ->
          Printf.printf "no %s artifact under %s\n" (Store.Artifact.kind_to_string kind) key;
          exit 1
      | Error (`Damaged msg) ->
          Printf.eprintf "store corruption: %s\n" msg;
          exit exit_store_corruption)

let store_get_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY" ~doc:"Registry key.") in
  Cmd.v
    (Cmd.info "get" ~doc:"Fetch an artifact (verifying its content digest).")
    Term.(const store_get $ root_t $ kind_t $ key $ out_t)

let store_list root =
  with_store root (fun store ->
      print_recovery store;
      let entries = Store.Registry.list store in
      List.iter
        (fun (e : Store.Artifact.entry) ->
          Printf.printf "%-7s %s  %8d bytes  seq %-5d %s\n"
            (Store.Artifact.kind_to_string e.Store.Artifact.kind)
            e.Store.Artifact.key e.Store.Artifact.size e.Store.Artifact.seq e.Store.Artifact.label)
        entries;
      let s = Store.Registry.stats store in
      Printf.printf "%d entr%s, %d journal bytes, %d payload bytes\n" s.Store.Registry.entries
        (if s.Store.Registry.entries = 1 then "y" else "ies")
        s.Store.Registry.journal_bytes s.Store.Registry.payload_bytes)

let store_list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List live registry entries.") Term.(const store_list $ root_t)

let store_gc root =
  with_store root (fun store ->
      print_recovery store;
      let c = Store.Registry.compact store in
      Printf.printf "compacted: %d live entr%s kept, %d stale record(s) dropped, %d orphan blob(s) removed\n"
        c.Store.Registry.live
        (if c.Store.Registry.live = 1 then "y" else "ies")
        c.Store.Registry.dropped_records c.Store.Registry.blobs_removed)

let store_gc_cmd =
  Cmd.v
    (Cmd.info "gc" ~doc:"Compact the journal to live entries and delete unreferenced blobs.")
    Term.(const store_gc $ root_t)

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and maintain the persistent watermark registry.")
    [ store_put_cmd; store_get_cmd; store_list_cmd; store_gc_cmd ]

(* ---- service layer (lib/service) ---- *)

let socket_t =
  Arg.(
    value
    & opt string "/tmp/pathmark.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

(* SIGTERM/SIGINT flip a flag the server's [stop] predicate polls: the
   listener drains in-flight requests, fsyncs the journal, removes the
   socket file and the process exits 0 — a supervisor's `kill` never
   loses an acknowledged write *)
let drain_on_signals () =
  let flag = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set flag true) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  flag

let serve root socket domains max_requests max_inflight no_fsync events_file =
  or_store_corruption (fun () ->
      let store = Store.Registry.open_store ~fsync:(not no_fsync) ~root () in
      Fun.protect
        ~finally:(fun () -> Store.Registry.close store)
        (fun () ->
          print_recovery store;
          let events_oc = Option.map open_out events_file in
          let events =
            Engine.Events.create ?sink:(Option.map Engine.Events.json_sink events_oc) ()
          in
          let r = Store.Registry.recovery store in
          Engine.Events.emit events
            (Engine.Events.Store_replay
               { records = r.Store.Registry.replayed; truncated_bytes = r.Store.Registry.truncated_bytes });
          Printf.printf "serving registry %s on %s (%d worker domain(s))\n%!" root socket domains;
          let draining = drain_on_signals () in
          let stopped =
            Service.Server.serve ~events ~domains ?max_requests ?max_inflight
              ~stop:(fun () -> Atomic.get draining)
              ~store ~socket_path:socket ()
          in
          Option.iter close_out events_oc;
          Printf.printf "served %d request(s), %d error(s), %d shed\n" stopped.Service.Server.requests
            stopped.Service.Server.errors stopped.Service.Server.shed))

let serve_cmd =
  let domains =
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for embed/recognize requests.")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N" ~doc:"Stop after N requests (smoke tests).")
  in
  let max_inflight =
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc:"Shed embed/recognize requests beyond N in flight (answered $(i,overloaded); clients back off and retry).")
  in
  let no_fsync =
    Arg.(value & flag & info [ "no-fsync" ] ~doc:"Skip fsync on journal commits (benchmarks only).")
  in
  let events_file =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc:"Write the JSON-lines event stream to FILE.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve the watermark registry and embed/recognize operations over a Unix-domain socket. SIGTERM/SIGINT drain gracefully.")
    Term.(const serve $ root_t $ socket_t $ domains $ max_requests $ max_inflight $ no_fsync $ events_file)

let fail_service code message =
  Printf.printf "service error [%s]: %s\n" code message;
  exit
    (if code = "damaged" then exit_store_corruption
     else if code = "unknown-scheme" then exit_unknown_scheme
     else 1)

(* connection refused / retries exhausted / per-request deadline blown:
   all exit 8, the retryable "the server is not there" code *)
let or_service_unavailable f =
  try f () with
  | Service.Client.Unavailable msg ->
      Printf.eprintf "service unavailable: %s\n" msg;
      exit exit_service_unavailable
  | Service.Client.Timed_out msg ->
      Printf.eprintf "service timed out: %s\n" msg;
      exit exit_service_unavailable

let query socket deadline source workload scheme key mark bits pieces input seed embed digest
    recognize_file expect want_stats want_list want_shutdown =
  let workload_entry = List.assoc_opt workload builtin_workloads in
  let program_bytes_and_input () =
    match source with
    | Some path -> (Stackvm.Serialize.encode (Minic.To_stackvm.compile_source (read_file path)), input)
    | None -> (
        match workload_entry with
        | Some w ->
            ( Stackvm.Serialize.encode (Workloads.Workload.vm_program w),
              if input = [] then w.Workloads.Workload.input else input )
        | None ->
            Printf.printf "unknown workload %s; available: %s\n" workload
              (String.concat " " (List.map fst builtin_workloads));
            exit 1)
  in
  let ran = ref false in
  or_service_unavailable (fun () ->
  Service.Client.with_client ?deadline socket (fun client ->
      let call req = Service.Client.call ?deadline client req in
      if embed then begin
        ran := true;
        let program, input = program_bytes_and_input () in
        match
          call
            (Service.Proto.Embed
               {
                 scheme;
                 program;
                 key;
                 bits;
                 pieces;
                 fingerprint = mark;
                 input;
                 seed = Int64.of_int seed;
               })
        with
        | Service.Proto.Embedded { digest; label; bytes_before; bytes_after } ->
            Printf.printf "embedded: %s (%d -> %d bytes)\n" label bytes_before bytes_after;
            Printf.printf "digest: %s\n" digest
        | Service.Proto.Error { code; message } -> fail_service code message
        | _ -> failwith "unexpected response to embed"
      end;
      (match (digest, recognize_file) with
      | None, None -> ()
      | _ -> (
          ran := true;
          let source =
            match (digest, recognize_file) with
            | Some d, _ -> `Stored d
            | None, Some f -> `Bytes (read_file f)
            | None, None -> assert false
          in
          let input =
            if input = [] then
              match workload_entry with Some w -> w.Workloads.Workload.input | None -> input
            else input
          in
          match call (Service.Proto.Recognize { scheme; source; key; bits; input }) with
          | Service.Proto.Recognized { value; confidence; registered } -> (
              Printf.printf "confidence %.3f\n" confidence;
              Option.iter
                (fun (i : Service.Proto.entry_info) ->
                  Printf.printf "registered: %s (%s)\n" i.Service.Proto.key i.Service.Proto.label)
                registered;
              match value with
              | Some w -> (
                  Printf.printf "fingerprint: %s\n" (Bignum.to_string w);
                  match expect with
                  | Some e when not (Bignum.equal e w) ->
                      Printf.printf "expected %s\n" (Bignum.to_string e);
                      exit exit_recognition_failed
                  | _ -> ())
              | None ->
                  Printf.printf "no watermark recovered\n";
                  exit exit_recognition_failed)
          | Service.Proto.Error { code; message } ->
              if expect <> None && (code = "not-found" || code = "bad-request") then begin
                Printf.printf "service error [%s]: %s\n" code message;
                exit exit_recognition_failed
              end
              else fail_service code message
          | _ -> failwith "unexpected response to recognize"));
      if want_stats then begin
        ran := true;
        match call Service.Proto.Stats with
        | Service.Proto.Stats_reply { entries; journal_bytes; payload_bytes; puts; gets; requests; errors }
          ->
            Printf.printf
              "entries %d, journal %d bytes, payloads %d bytes; %d put(s), %d get(s); %d request(s), %d error(s)\n"
              entries journal_bytes payload_bytes puts gets requests errors
        | Service.Proto.Error { code; message } -> fail_service code message
        | _ -> failwith "unexpected response to stats"
      end;
      if want_list then begin
        ran := true;
        match call Service.Proto.List_artifacts with
        | Service.Proto.Listing infos ->
            List.iter
              (fun (i : Service.Proto.entry_info) ->
                Printf.printf "%-7s %s  %8d bytes  seq %-5d %s\n"
                  (Store.Artifact.kind_to_string i.Service.Proto.kind)
                  i.Service.Proto.key i.Service.Proto.size i.Service.Proto.seq i.Service.Proto.label)
              infos
        | Service.Proto.Error { code; message } -> fail_service code message
        | _ -> failwith "unexpected response to list"
      end;
      if want_shutdown then begin
        ran := true;
        match call Service.Proto.Shutdown with
        | Service.Proto.Shutting_down -> Printf.printf "server shutting down\n"
        | Service.Proto.Error { code; message } -> fail_service code message
        | _ -> failwith "unexpected response to shutdown"
      end));
  if not !ran then begin
    Printf.printf "nothing to do: pass --embed, --digest, --recognize, --stats, --list or --shutdown\n";
    exit 2
  end

let query_cmd =
  let source =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SOURCE.mc" ~doc:"MiniC source to embed into (omit to use $(b,--workload)).")
  in
  let workload =
    Arg.(value & opt string "caffeine" & info [ "workload" ] ~docv:"NAME" ~doc:"Built-in host workload for $(b,--embed) when no source file is given.")
  in
  let embed = Arg.(value & flag & info [ "embed" ] ~doc:"Embed $(b,--mark) server-side and register the result.") in
  let digest =
    Arg.(value & opt (some string) None & info [ "digest" ] ~docv:"HEX" ~doc:"Recognize the stored program with this digest.")
  in
  let recognize_file =
    Arg.(value & opt (some file) None & info [ "recognize" ] ~docv:"FILE" ~doc:"Recognize a local serialized VM program server-side.")
  in
  let expect =
    Arg.(value & opt (some bignum_conv) None & info [ "expect" ] ~docv:"W" ~doc:"Fail (exit 3) unless recognition recovers exactly this fingerprint.")
  in
  let want_stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print registry and server statistics.") in
  let want_list = Arg.(value & flag & info [ "list" ] ~doc:"List registered artifacts.") in
  let want_shutdown = Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to stop.") in
  let pieces = Arg.(value & opt int 40 & info [ "pieces" ] ~doc:"Number of redundant pieces.") in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc:"Per-request deadline; connect retries with jittered backoff until it expires, then exit 8.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Talk to a running $(b,pathmark serve): embed, recognize, inspect.")
    Term.(
      const query $ socket_t $ deadline $ source $ workload $ scheme_t $ key_t $ mark_t $ bits_t
      $ pieces $ input_t $ seed_t $ embed $ digest $ recognize_file $ expect $ want_stats $ want_list
      $ want_shutdown)

(* ---- cluster topology (lib/shard) ---- *)

let cluster_dir_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Cluster directory: shard registry roots and sockets live here.")

(* endpoints from the on-disk layout, so status/drain can address a
   cluster another process is serving *)
let discover_endpoints dir =
  (if Sys.file_exists dir then Array.to_list (Sys.readdir dir) else [])
  |> List.filter_map (fun f ->
         match Filename.chop_suffix_opt ~suffix:".sock" f with
         | Some name
           when String.starts_with ~prefix:"shard-" name
                && not (String.ends_with ~suffix:"-replica" name) ->
             let rep = Filename.concat dir (name ^ "-replica.sock") in
             Some
               {
                 Shard.Router.name;
                 socket = Filename.concat dir f;
                 replica = (if Sys.file_exists rep then Some rep else None);
               }
         | _ -> None)
  |> List.sort (fun a b -> compare a.Shard.Router.name b.Shard.Router.name)

let parse_replicate shards = function
  | None -> []
  | Some "all" -> List.init shards (fun i -> i)
  | Some spec ->
      String.split_on_char ',' spec
      |> List.filter_map (fun s ->
             match int_of_string_opt (String.trim s) with
             | Some i when i >= 0 && i < shards -> Some i
             | _ ->
                 Printf.eprintf "bad --replicate entry %S (want indices below %d, or \"all\")\n" s shards;
                 exit 2)

let cluster_serve dir shards replicate max_inflight events_file =
  let events_oc = Option.map open_out events_file in
  let events = Engine.Events.create ?sink:(Option.map Engine.Events.json_sink events_oc) () in
  let replicate = parse_replicate shards replicate in
  let cluster = Shard.Cluster.start ~events ?max_inflight ~replicate ~dir ~shards () in
  List.iter
    (fun ep ->
      Printf.printf "%s on %s%s\n" ep.Shard.Router.name ep.Shard.Router.socket
        (match ep.Shard.Router.replica with Some r -> " (replica " ^ r ^ ")" | None -> ""))
    (Shard.Cluster.endpoints cluster);
  Printf.printf "%d shard(s) up under %s; SIGTERM drains\n%!" shards dir;
  let draining = drain_on_signals () in
  while not (Atomic.get draining) do
    Unix.sleepf 0.1
  done;
  List.iter
    (fun (name, (s : Service.Server.stopped)) ->
      Printf.printf "%s: %d request(s), %d error(s), %d shed\n" name s.Service.Server.requests
        s.Service.Server.errors s.Service.Server.shed)
    (Shard.Cluster.stop cluster);
  Option.iter close_out events_oc

let cluster_serve_cmd =
  let shards = Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N" ~doc:"Number of shard servers.") in
  let replicate =
    Arg.(value & opt (some string) None & info [ "replicate" ] ~docv:"SPEC" ~doc:"Shard indices that get a journal-shipping standby: comma-separated, or $(b,all).")
  in
  let max_inflight =
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc:"Per-shard in-flight bound for embed/recognize; excess is shed as $(i,overloaded).")
  in
  let events_file =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc:"Write the JSON-lines event stream to FILE.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run N shard servers (consistent-hash ring) with optional standby replicas under one directory.")
    Term.(const cluster_serve $ cluster_dir_t $ shards $ replicate $ max_inflight $ events_file)

let cluster_status dir =
  match discover_endpoints dir with
  | [] ->
      Printf.eprintf "no shard sockets under %s\n" dir;
      exit exit_service_unavailable
  | endpoints ->
      let router = Shard.Router.create endpoints in
      let unreachable = ref 0 in
      List.iter
        (fun (name, socket, reply) ->
          match reply with
          | Ok (role, entries, journal_bytes, digest) ->
              Printf.printf "%-10s %-8s %6d entr%s %9d journal bytes  %s  (%s)\n" name role entries
                (if entries = 1 then "y" else "ies")
                journal_bytes
                (if digest = "" then "-" else String.sub digest 0 12)
                socket
          | Error msg ->
              incr unreachable;
              Printf.printf "%-10s DOWN: %s\n" name msg)
        (Shard.Router.ping_all router);
      Shard.Router.close router;
      if !unreachable > 0 then exit exit_service_unavailable

let cluster_status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"Ping every shard (and promoted replica) in a cluster directory; exit 8 if any is down.")
    Term.(const cluster_status $ cluster_dir_t)

let cluster_drain dir =
  let endpoints = discover_endpoints dir in
  if endpoints = [] then begin
    Printf.eprintf "no shard sockets under %s\n" dir;
    exit exit_service_unavailable
  end;
  let sockets =
    List.concat_map
      (fun ep ->
        (ep.Shard.Router.name, ep.Shard.Router.socket)
        :: (match ep.Shard.Router.replica with
           | Some r -> [ (ep.Shard.Router.name ^ "-replica", r) ]
           | None -> []))
      endpoints
  in
  List.iter
    (fun (name, socket) ->
      match
        Service.Client.with_client ~deadline:2.0 socket (fun c ->
            Service.Client.call ~deadline:5.0 c Service.Proto.Shutdown)
      with
      | Service.Proto.Shutting_down -> Printf.printf "%s draining\n" name
      | _ -> Printf.printf "%s: unexpected reply to shutdown\n" name
      | exception (Service.Client.Unavailable _ | Service.Client.Timed_out _) ->
          Printf.printf "%s already down\n" name)
    sockets

let cluster_drain_cmd =
  Cmd.v
    (Cmd.info "drain" ~doc:"Gracefully stop every shard and replica in a cluster directory (in-flight requests finish, journals fsync).")
    Term.(const cluster_drain $ cluster_dir_t)

let cluster_drill dir shards ops marks =
  let mark_program, mark_input =
    match List.assoc_opt "caffeine" builtin_workloads with
    | Some w ->
        ( Some (Stackvm.Serialize.encode (Workloads.Workload.vm_program w)),
          w.Workloads.Workload.input )
    | None -> (None, [])
  in
  let r =
    Shard.Drill.run ~shards ~ops ~marks ?mark_program ~mark_input
      ~log:(fun m -> Printf.printf "%s\n%!" m)
      ~dir ()
  in
  Printf.printf
    "drill: %d shard(s), %d call(s), %d mark pair(s), %d lost; failover %.1f ms, recovery %.1f ms; p50 %.2f ms, p99 %.2f ms\n"
    r.Shard.Drill.shards r.Shard.Drill.ops r.Shard.Drill.marks r.Shard.Drill.lost
    r.Shard.Drill.failover_ms r.Shard.Drill.recovery_ms r.Shard.Drill.ms_p50 r.Shard.Drill.ms_p99;
  if r.Shard.Drill.lost > 0 then begin
    Printf.printf "FAIL: %d acknowledged response(s) lost across the failover\n" r.Shard.Drill.lost;
    exit 1
  end

let cluster_drill_cmd =
  let shards = Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N" ~doc:"Shard servers (shard-0 gets the standby that is promoted).") in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc:"Put/get pairs to soak with (the leader dies 60% through).") in
  let marks = Arg.(value & opt int 4 & info [ "marks" ] ~docv:"N" ~doc:"Embed/recognize pairs to interleave.") in
  Cmd.v
    (Cmd.info "drill" ~doc:"Failover drill: soak a fresh cluster, kill the replicated leader mid-batch, verify zero lost responses. Exits 1 on any loss.")
    Term.(const cluster_drill $ cluster_dir_t $ shards $ ops $ marks)

let cluster_cmd =
  Cmd.group
    (Cmd.info "cluster" ~doc:"Run and operate a sharded, replicated pathmark service.")
    [ cluster_serve_cmd; cluster_status_cmd; cluster_drain_cmd; cluster_drill_cmd ]

(* ---- tournament: the cross-product resilience scorecard ---- *)

(* publish the scorecard JSON to a running cluster and read it back, so
   an operator can fetch the latest matrix from any shard *)
let publish_scorecard dir payload =
  match discover_endpoints dir with
  | [] ->
      Printf.eprintf "no shard sockets under %s\n" dir;
      exit exit_service_unavailable
  | endpoints ->
      let router = Shard.Router.create endpoints in
      let finally () = Shard.Router.close router in
      Fun.protect ~finally (fun () ->
          let key = Digest.to_hex (Digest.string payload) in
          (match
             Shard.Router.call router ~key
               (Service.Proto.Put_artifact
                  { kind = Store.Artifact.Report; key; label = "tournament-scorecard"; payload })
           with
          | Ok (Service.Proto.Stored _) -> ()
          | Ok _ ->
              Printf.eprintf "unexpected reply publishing the scorecard\n";
              exit exit_service_unavailable
          | Error e ->
              Printf.eprintf "cluster put failed: %s\n" (Shard.Router.error_to_string e);
              exit exit_service_unavailable);
          match
            Shard.Router.call router ~key (Service.Proto.Get_artifact { kind = Store.Artifact.Report; key })
          with
          | Ok (Service.Proto.Artifact { payload = back; _ }) when back = payload ->
              Printf.printf "scorecard published to cluster shard %s (report %s)\n"
                (Shard.Router.route router ~key)
                (String.sub key 0 12)
          | Ok _ | Error _ ->
              Printf.eprintf "cluster read-back of the published scorecard failed\n";
              exit exit_service_unavailable)

let tournament schemes workload_names all_workloads attack_names fault_specs jobs bits seed
    fault_seed cache_spec events_file json no_gate cluster =
  let schemes = if schemes = [] then default_audit_schemes else schemes in
  (* resolve up front so an unknown name is exit 6, not a failed cell *)
  List.iter (fun s -> ignore (resolve_scheme s)) schemes;
  let workloads =
    if all_workloads then List.map snd builtin_workloads
    else if workload_names = [] then [ Workloads.Caffeine.suite ]
    else
      List.map
        (fun name ->
          match
            List.find_opt
              (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name = name)
              analyzer_workloads
          with
          | Some w -> w
          | None ->
              Printf.printf "unknown workload %s; available: %s\n" name
                (String.concat " "
                   (List.map (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name) analyzer_workloads));
              exit 1)
        workload_names
  in
  let attacks = match attack_names with [] -> None | l -> Some l in
  let fault_plans =
    match fault_specs with
    | [] -> None
    | plans ->
        (* the clean baseline always runs; each --faults occurrence adds
           one plan, named by its spec list *)
        Some
          (("clean", [])
          :: List.map
               (fun specs -> (String.concat "," (List.map Fault.Spec.to_string specs), specs))
               plans)
  in
  let cache =
    match cache_spec with
    | "none" -> None
    | "mem" -> Some (Engine.Cache.create ())
    | spec when String.length spec > 6 && String.sub spec 0 6 = "store:" ->
        let root = String.sub spec 6 (String.length spec - 6) in
        let store = or_store_corruption (fun () -> Store.Registry.open_store ~root ()) in
        Some (Engine.Cache.create ~store ())
    | dir -> Some (Engine.Cache.create ~spill_dir:dir ())
  in
  let events_oc = Option.map open_out events_file in
  let events = Engine.Events.create ?sink:(Option.map Engine.Events.json_sink events_oc) () in
  let card =
    try
      Tournament.Scorecard.run ~domains:jobs ~seed:(Int64.of_int seed) ~bits
        ~fault_seed:(Int64.of_int fault_seed) ?attacks ?fault_plans ?cache ~events ~schemes
        ~workloads ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  if json then print_string (Tournament.Scorecard.to_json card)
  else print_string (Tournament.Scorecard.render card);
  Option.iter close_out events_oc;
  (match cluster with
  | None -> ()
  | Some dir -> publish_scorecard dir (Tournament.Scorecard.to_json card));
  if (not (Tournament.Scorecard.gate_ok card)) && not no_gate then exit exit_analysis_findings

let tournament_cmd =
  let schemes =
    Arg.(
      value & opt_all string []
      & info [ "scheme" ] ~docv:"NAME"
          ~doc:"Scheme to measure (repeatable; '+'-joined names compose). Defaults to jwm, nwm, gwm and jwm+gwm.")
  in
  let workloads =
    Arg.(
      value & opt_all string []
      & info [ "workload" ] ~docv:"NAME" ~doc:"Workload to run the matrix on (repeatable). Defaults to caffeine.")
  in
  let all_workloads =
    Arg.(value & flag & info [ "all-workloads" ] ~doc:"Run the matrix on every built-in batch workload.")
  in
  let attacks =
    Arg.(
      value & opt_all string []
      & info [ "attack" ] ~docv:"NAME"
          ~doc:"Attack to include (repeatable; applied on every track that knows the name). Defaults to one representative per attack class on each track.")
  in
  let faults =
    Arg.(
      value & opt_all inject_conv []
      & info [ "faults" ] ~docv:"NAME=RATE,..."
          ~doc:"Fault plan to add as a matrix dimension (repeatable; the clean plan always runs too). Defaults to clean plus a sub-tolerance noisy plan.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the cell batch.")
  in
  let bits_t = Arg.(value & opt int 16 & info [ "bits" ] ~docv:"N" ~doc:"Fingerprint width in bits.") in
  let cache_t =
    Arg.(
      value & opt string "mem"
      & info [ "cache" ] ~docv:"SPEC"
          ~doc:"Cell result cache: $(b,none), $(b,mem), $(b,store:DIR) (persistent registry, incremental across runs) or a spill directory.")
  in
  let events_file =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc:"Write the JSON-lines event stream (per-cell progress, gate results) to FILE.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the scorecard as JSON.") in
  let no_gate =
    Arg.(
      value & flag
      & info [ "no-gate" ]
          ~doc:"Report only: do not fail (exit 7) when a scheme's composite resilience falls below its declared floor, a control cell false-positives, or a cell fails.")
  in
  let cluster =
    Arg.(
      value & opt (some string) None
      & info [ "cluster" ] ~docv:"DIR"
          ~doc:"Publish the scorecard JSON to the running cluster under DIR and verify the read-back (exit 8 if unreachable).")
  in
  Cmd.v
    (Cmd.info "tournament"
       ~doc:"Run the scheme × workload × attack × fault-plan resilience matrix through the batch engine and reduce it to per-scheme scorecards, gated against each scheme's declared resilience floor. Exits 7 on a gate violation.")
    Term.(
      const tournament $ schemes $ workloads $ all_workloads $ attacks $ faults $ jobs $ bits_t
      $ seed_t $ fault_seed_t $ cache_t $ events_file $ json $ no_gate $ cluster)

let main =
  Cmd.group
    (Cmd.info "pathmark" ~version:"1.0.0"
       ~doc:"Dynamic path-based software watermarking (Collberg et al., PLDI 2004).")
    [
      batch_cmd;
      schemes_cmd;
      embed_cmd;
      recognize_cmd;
      embed_vm_cmd;
      recognize_vm_cmd;
      run_vm_cmd;
      trace_vm_cmd;
      recognize_trace_cmd;
      attack_vm_cmd;
      list_attacks_cmd;
      faults_cmd;
      embed_native_cmd;
      extract_native_cmd;
      run_native_cmd;
      disasm_cmd;
      analyze_cmd;
      audit_cmd;
      tournament_cmd;
      experiment_cmd;
      store_cmd;
      serve_cmd;
      query_cmd;
      cluster_cmd;
    ]

let () = exit (Cmd.eval main)
